package sparql

import (
	"fmt"
	"strings"

	"mdm/internal/rdf"
)

// Parse parses a SPARQL query string.
func Parse(src string) (*Query, error) {
	p := &parser{lx: newLexer(src), prefixes: rdf.NewPrefixMap()}
	if err := p.bump(); err != nil {
		return nil, err
	}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	lx       *lexer
	tok      token
	prefixes *rdf.PrefixMap
}

func (p *parser) bump() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sparql: line %d:%d: %s", p.tok.line, p.tok.col, fmt.Sprintf(format, args...))
}

func (p *parser) expectKeyword(kw string) error {
	if p.tok.kind != tokKeyword || p.tok.text != kw {
		return p.errf("expected %s, got %q", kw, p.tok.text)
	}
	return p.bump()
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{Prefixes: p.prefixes, Limit: -1}

	// Prologue: PREFIX declarations.
	for p.tok.kind == tokKeyword && p.tok.text == "PREFIX" {
		if err := p.bump(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokPName || !strings.HasSuffix(p.tok.text, ":") {
			return nil, p.errf("expected prefix declaration like ex:, got %q", p.tok.text)
		}
		prefix := strings.TrimSuffix(p.tok.text, ":")
		if err := p.bump(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokIRI {
			return nil, p.errf("expected IRI after PREFIX %s:", prefix)
		}
		p.prefixes.Bind(prefix, p.tok.text)
		if err := p.bump(); err != nil {
			return nil, err
		}
	}

	switch {
	case p.tok.kind == tokKeyword && p.tok.text == "SELECT":
		q.Form = FormSelect
		if err := p.bump(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokKeyword && (p.tok.text == "DISTINCT" || p.tok.text == "REDUCED") {
			q.Distinct = true
			if err := p.bump(); err != nil {
				return nil, err
			}
		}
		if p.tok.kind == tokStar {
			q.Star = true
			if err := p.bump(); err != nil {
				return nil, err
			}
		} else {
			for p.tok.kind == tokVar {
				q.Variables = append(q.Variables, p.tok.text)
				if err := p.bump(); err != nil {
					return nil, err
				}
			}
			if len(q.Variables) == 0 {
				return nil, p.errf("SELECT needs * or at least one variable")
			}
		}
		// WHERE keyword is optional in SPARQL.
		if p.tok.kind == tokKeyword && p.tok.text == "WHERE" {
			if err := p.bump(); err != nil {
				return nil, err
			}
		}
	case p.tok.kind == tokKeyword && p.tok.text == "ASK":
		q.Form = FormAsk
		if err := p.bump(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokKeyword && p.tok.text == "WHERE" {
			if err := p.bump(); err != nil {
				return nil, err
			}
		}
	default:
		return nil, p.errf("expected SELECT or ASK, got %q", p.tok.text)
	}

	g, err := p.parseGroup()
	if err != nil {
		return nil, err
	}
	q.Where = g

	// Solution modifiers.
	for p.tok.kind == tokKeyword {
		switch p.tok.text {
		case "ORDER":
			if err := p.bump(); err != nil {
				return nil, err
			}
			if err := p.expectKeyword("BY"); err != nil {
				return nil, err
			}
			for {
				key, ok, err := p.parseOrderKey()
				if err != nil {
					return nil, err
				}
				if !ok {
					break
				}
				q.OrderBy = append(q.OrderBy, key)
			}
			if len(q.OrderBy) == 0 {
				return nil, p.errf("ORDER BY needs at least one key")
			}
		case "LIMIT":
			if err := p.bump(); err != nil {
				return nil, err
			}
			n, err := p.parseNonNegInt("LIMIT")
			if err != nil {
				return nil, err
			}
			q.Limit = n
		case "OFFSET":
			if err := p.bump(); err != nil {
				return nil, err
			}
			n, err := p.parseNonNegInt("OFFSET")
			if err != nil {
				return nil, err
			}
			q.Offset = n
		default:
			return nil, p.errf("unexpected keyword %q after WHERE clause", p.tok.text)
		}
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("trailing input %q", p.tok.text)
	}
	return q, nil
}

func (p *parser) parseOrderKey() (OrderKey, bool, error) {
	switch {
	case p.tok.kind == tokVar:
		k := OrderKey{Var: p.tok.text}
		return k, true, p.bump()
	case p.tok.kind == tokKeyword && (p.tok.text == "ASC" || p.tok.text == "DESC"):
		desc := p.tok.text == "DESC"
		if err := p.bump(); err != nil {
			return OrderKey{}, false, err
		}
		if p.tok.kind != tokLParen {
			return OrderKey{}, false, p.errf("expected ( after ASC/DESC")
		}
		if err := p.bump(); err != nil {
			return OrderKey{}, false, err
		}
		if p.tok.kind != tokVar {
			return OrderKey{}, false, p.errf("expected variable in ORDER BY")
		}
		k := OrderKey{Var: p.tok.text, Desc: desc}
		if err := p.bump(); err != nil {
			return OrderKey{}, false, err
		}
		if p.tok.kind != tokRParen {
			return OrderKey{}, false, p.errf("expected ) in ORDER BY")
		}
		return k, true, p.bump()
	default:
		return OrderKey{}, false, nil
	}
}

func (p *parser) parseNonNegInt(ctx string) (int, error) {
	if p.tok.kind != tokNumber {
		return 0, p.errf("expected number after %s", ctx)
	}
	var n int
	if _, err := fmt.Sscanf(p.tok.text, "%d", &n); err != nil || n < 0 {
		return 0, p.errf("bad %s value %q", ctx, p.tok.text)
	}
	return n, p.bump()
}

func (p *parser) parseGroup() (*Group, error) {
	if p.tok.kind != tokLBrace {
		return nil, p.errf("expected {, got %q", p.tok.text)
	}
	if err := p.bump(); err != nil {
		return nil, err
	}
	g := &Group{}
	for {
		switch {
		case p.tok.kind == tokRBrace:
			if err := p.bump(); err != nil {
				return nil, err
			}
			return g, nil
		case p.tok.kind == tokEOF:
			return nil, p.errf("unterminated group pattern")
		case p.tok.kind == tokKeyword && p.tok.text == "FILTER":
			if err := p.bump(); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			g.Filters = append(g.Filters, e)
		case p.tok.kind == tokKeyword && p.tok.text == "OPTIONAL":
			if err := p.bump(); err != nil {
				return nil, err
			}
			sub, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			g.Patterns = append(g.Patterns, Optional{Group: sub})
		case p.tok.kind == tokKeyword && p.tok.text == "GRAPH":
			if err := p.bump(); err != nil {
				return nil, err
			}
			name, err := p.parseNode()
			if err != nil {
				return nil, err
			}
			if !name.IsVar() && !name.Term.IsIRI() {
				return nil, p.errf("GRAPH name must be a variable or IRI, got %s", name)
			}
			sub, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			g.Patterns = append(g.Patterns, GraphPattern{Name: name, Group: sub})
		case p.tok.kind == tokLBrace:
			// Sub-group: either the start of a UNION chain or a plain
			// nested group (treated as inlined join).
			first, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			if p.tok.kind == tokKeyword && p.tok.text == "UNION" {
				branches := []*Group{first}
				for p.tok.kind == tokKeyword && p.tok.text == "UNION" {
					if err := p.bump(); err != nil {
						return nil, err
					}
					b, err := p.parseGroup()
					if err != nil {
						return nil, err
					}
					branches = append(branches, b)
				}
				g.Patterns = append(g.Patterns, Union{Branches: branches})
			} else {
				g.Patterns = append(g.Patterns, first.Patterns...)
				g.Filters = append(g.Filters, first.Filters...)
			}
		case p.tok.kind == tokDot:
			if err := p.bump(); err != nil {
				return nil, err
			}
		default:
			if err := p.parseTriplesBlock(g); err != nil {
				return nil, err
			}
		}
	}
}

// parseTriplesBlock parses subject predicate-object lists with ';' and
// ',' abbreviations, appending TriplePatterns to g.
func (p *parser) parseTriplesBlock(g *Group) error {
	subj, err := p.parseNode()
	if err != nil {
		return err
	}
	if !subj.IsVar() && !subj.Term.IsIRI() && !subj.Term.IsBlank() {
		return p.errf("triple subject must be a variable or IRI, got %s", subj)
	}
	for {
		pred, err := p.parseVerb()
		if err != nil {
			return err
		}
		if !pred.IsVar() && !pred.Term.IsIRI() {
			return p.errf("triple predicate must be a variable or IRI, got %s", pred)
		}
		for {
			obj, err := p.parseNode()
			if err != nil {
				return err
			}
			g.Patterns = append(g.Patterns, TriplePattern{S: subj, P: pred, O: obj})
			if p.tok.kind == tokComma {
				if err := p.bump(); err != nil {
					return err
				}
				continue
			}
			break
		}
		if p.tok.kind == tokSemi {
			if err := p.bump(); err != nil {
				return err
			}
			// allow trailing ';'
			if p.tok.kind == tokDot || p.tok.kind == tokRBrace {
				break
			}
			continue
		}
		break
	}
	if p.tok.kind == tokDot {
		return p.bump()
	}
	if p.tok.kind == tokRBrace || p.tok.kind == tokEOF ||
		(p.tok.kind == tokKeyword && (p.tok.text == "FILTER" || p.tok.text == "OPTIONAL" || p.tok.text == "GRAPH")) {
		return nil
	}
	return p.errf("expected '.' after triple pattern, got %q", p.tok.text)
}

func (p *parser) parseVerb() (Node, error) {
	if p.tok.kind == tokA {
		if err := p.bump(); err != nil {
			return Node{}, err
		}
		return N(rdf.IRI(rdf.RDFType)), nil
	}
	return p.parseNode()
}

// parseNode parses a variable, IRI, prefixed name or literal.
func (p *parser) parseNode() (Node, error) {
	switch p.tok.kind {
	case tokVar:
		n := V(p.tok.text)
		return n, p.bump()
	case tokIRI:
		n := N(rdf.IRI(p.tok.text))
		return n, p.bump()
	case tokPName:
		iri, ok := p.prefixes.Expand(p.tok.text)
		if !ok {
			return Node{}, p.errf("unknown prefix in %q", p.tok.text)
		}
		n := N(rdf.IRI(iri))
		return n, p.bump()
	case tokString:
		lex := p.tok.text
		if err := p.bump(); err != nil {
			return Node{}, err
		}
		switch p.tok.kind {
		case tokLangTag:
			n := N(rdf.LangLit(lex, p.tok.text))
			return n, p.bump()
		case tokDatatype:
			if err := p.bump(); err != nil {
				return Node{}, err
			}
			dt, err := p.parseNode()
			if err != nil {
				return Node{}, err
			}
			if dt.IsVar() || !dt.Term.IsIRI() {
				return Node{}, p.errf("datatype must be an IRI")
			}
			return N(rdf.TypedLit(lex, dt.Term.Value)), nil
		default:
			return N(rdf.Lit(lex)), nil
		}
	case tokNumber:
		n := N(numberTerm(p.tok.text))
		return n, p.bump()
	case tokBoolean:
		n := N(rdf.BoolLit(p.tok.text == "true"))
		return n, p.bump()
	default:
		return Node{}, p.errf("expected term, got %s %q", p.tok.kind, p.tok.text)
	}
}

func numberTerm(lex string) rdf.Term {
	if strings.ContainsAny(lex, ".eE") {
		return rdf.TypedLit(lex, rdf.XSDDouble)
	}
	return rdf.TypedLit(lex, rdf.XSDInteger)
}

// --- FILTER expression parsing (precedence: || < && < cmp < unary) ---

func (p *parser) parseExpr() (Expr, error) {
	if p.tok.kind != tokLParen && !p.isExprStart() {
		return nil, p.errf("expected expression, got %q", p.tok.text)
	}
	return p.parseOr()
}

func (p *parser) isExprStart() bool {
	switch p.tok.kind {
	case tokVar, tokString, tokNumber, tokBoolean, tokIRI, tokPName, tokLParen:
		return true
	case tokOp:
		return p.tok.text == "!"
	case tokKeyword:
		return p.tok.text == "BOUND" || p.tok.text == "REGEX" || p.tok.text == "STR"
	}
	return false
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && p.tok.text == "||" {
		if err := p.bump(); err != nil {
			return nil, err
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = LogicExpr{Op: "||", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && p.tok.text == "&&" {
		if err := p.bump(); err != nil {
			return nil, err
		}
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = LogicExpr{Op: "&&", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokOp {
		switch p.tok.text {
		case "=", "!=", "<", "<=", ">", ">=":
			op := p.tok.text
			if err := p.bump(); err != nil {
				return nil, err
			}
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return CmpExpr{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.tok.kind == tokOp && p.tok.text == "!" {
		if err := p.bump(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return NotExpr{X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	switch {
	case p.tok.kind == tokLParen:
		if err := p.bump(); err != nil {
			return nil, err
		}
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, p.errf("expected )")
		}
		return e, p.bump()
	case p.tok.kind == tokVar:
		e := VarExpr{Name: p.tok.text}
		return e, p.bump()
	case p.tok.kind == tokKeyword && p.tok.text == "BOUND":
		if err := p.bump(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokLParen {
			return nil, p.errf("expected ( after BOUND")
		}
		if err := p.bump(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokVar {
			return nil, p.errf("BOUND takes a variable")
		}
		name := p.tok.text
		if err := p.bump(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, p.errf("expected ) after BOUND variable")
		}
		return BoundExpr{Name: name}, p.bump()
	case p.tok.kind == tokKeyword && p.tok.text == "STR":
		if err := p.bump(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokLParen {
			return nil, p.errf("expected ( after STR")
		}
		if err := p.bump(); err != nil {
			return nil, err
		}
		x, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, p.errf("expected ) after STR argument")
		}
		return StrExpr{X: x}, p.bump()
	case p.tok.kind == tokKeyword && p.tok.text == "REGEX":
		if err := p.bump(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokLParen {
			return nil, p.errf("expected ( after REGEX")
		}
		if err := p.bump(); err != nil {
			return nil, err
		}
		x, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokComma {
			return nil, p.errf("REGEX needs a pattern argument")
		}
		if err := p.bump(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokString {
			return nil, p.errf("REGEX pattern must be a string")
		}
		pattern := p.tok.text
		if err := p.bump(); err != nil {
			return nil, err
		}
		flags := ""
		if p.tok.kind == tokComma {
			if err := p.bump(); err != nil {
				return nil, err
			}
			if p.tok.kind != tokString {
				return nil, p.errf("REGEX flags must be a string")
			}
			flags = p.tok.text
			if err := p.bump(); err != nil {
				return nil, err
			}
		}
		if p.tok.kind != tokRParen {
			return nil, p.errf("expected ) after REGEX")
		}
		re, err := NewRegexExpr(x, pattern, flags)
		if err != nil {
			return nil, err
		}
		return re, p.bump()
	default:
		n, err := p.parseNode()
		if err != nil {
			return nil, err
		}
		if n.IsVar() {
			return VarExpr{Name: n.Var}, nil
		}
		return ConstExpr{Term: n.Term}, nil
	}
}
