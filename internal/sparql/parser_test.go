package sparql

import (
	"strings"
	"testing"

	"mdm/internal/rdf"
)

func TestParseSimpleSelect(t *testing.T) {
	q, err := Parse(`
PREFIX ex: <http://ex.org/>
SELECT ?name ?team WHERE {
  ?p a ex:Player .
  ?p ex:name ?name .
  ?p ex:team ?team .
}`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Form != FormSelect {
		t.Error("form != SELECT")
	}
	if len(q.Variables) != 2 || q.Variables[0] != "name" || q.Variables[1] != "team" {
		t.Errorf("Variables = %v", q.Variables)
	}
	if len(q.Where.Patterns) != 3 {
		t.Fatalf("patterns = %d", len(q.Where.Patterns))
	}
	tp, ok := q.Where.Patterns[0].(TriplePattern)
	if !ok {
		t.Fatalf("pattern[0] is %T", q.Where.Patterns[0])
	}
	if !tp.S.IsVar() || tp.S.Var != "p" {
		t.Errorf("subject = %v", tp.S)
	}
	if tp.P.Term.Value != rdf.RDFType {
		t.Errorf("'a' not expanded: %v", tp.P)
	}
	if tp.O.Term.Value != "http://ex.org/Player" {
		t.Errorf("prefixed object = %v", tp.O)
	}
}

func TestParseSemicolonCommaAbbreviations(t *testing.T) {
	q, err := Parse(`
PREFIX ex: <http://ex.org/>
SELECT * WHERE {
  ?p a ex:Player ; ex:knows ?q , ?r ; ex:name ?n .
}`)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(q.Where.Patterns); got != 4 {
		t.Fatalf("patterns = %d, want 4", got)
	}
	for _, p := range q.Where.Patterns {
		tp := p.(TriplePattern)
		if !tp.S.IsVar() || tp.S.Var != "p" {
			t.Errorf("subject not shared: %v", tp)
		}
	}
	if !q.Star {
		t.Error("SELECT * not recognized")
	}
}

func TestParseDistinctOrderLimitOffset(t *testing.T) {
	q, err := Parse(`SELECT DISTINCT ?x WHERE { ?x <http://p> ?y . }
ORDER BY DESC(?y) ?x LIMIT 10 OFFSET 5`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Distinct {
		t.Error("DISTINCT missing")
	}
	if len(q.OrderBy) != 2 || !q.OrderBy[0].Desc || q.OrderBy[0].Var != "y" || q.OrderBy[1].Var != "x" {
		t.Errorf("OrderBy = %v", q.OrderBy)
	}
	if q.Limit != 10 || q.Offset != 5 {
		t.Errorf("limit/offset = %d/%d", q.Limit, q.Offset)
	}
}

func TestParseAsk(t *testing.T) {
	q, err := Parse(`ASK { <http://s> <http://p> "v" . }`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Form != FormAsk {
		t.Error("form != ASK")
	}
}

func TestParseOptionalFilterUnionGraph(t *testing.T) {
	q, err := Parse(`
PREFIX ex: <http://ex.org/>
SELECT ?n ?h WHERE {
  ?p ex:name ?n .
  OPTIONAL { ?p ex:height ?h . }
  FILTER (?h > 170 && ?n != "X")
  { ?p a ex:Player . } UNION { ?p a ex:Coach . }
  GRAPH ex:g1 { ?p ex:active true . }
  GRAPH ?g { ?p ex:src ?s . }
}`)
	if err != nil {
		t.Fatal(err)
	}
	var haveOpt, haveUnion, haveGraphIRI, haveGraphVar bool
	for _, p := range q.Where.Patterns {
		switch pp := p.(type) {
		case Optional:
			haveOpt = true
		case Union:
			haveUnion = len(pp.Branches) == 2
		case GraphPattern:
			if pp.Name.IsVar() {
				haveGraphVar = true
			} else {
				haveGraphIRI = true
			}
		}
	}
	if !haveOpt || !haveUnion || !haveGraphIRI || !haveGraphVar {
		t.Errorf("missing structures: opt=%v union=%v giri=%v gvar=%v",
			haveOpt, haveUnion, haveGraphIRI, haveGraphVar)
	}
	if len(q.Where.Filters) != 1 {
		t.Fatalf("filters = %d", len(q.Where.Filters))
	}
}

func TestParseLiteralForms(t *testing.T) {
	q, err := Parse(`PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
SELECT * WHERE {
  ?s <http://p1> "plain" .
  ?s <http://p2> "hola"@es .
  ?s <http://p3> "5"^^xsd:integer .
  ?s <http://p4> 42 .
  ?s <http://p5> 3.14 .
  ?s <http://p6> true .
}`)
	if err != nil {
		t.Fatal(err)
	}
	want := []rdf.Term{
		rdf.Lit("plain"),
		rdf.LangLit("hola", "es"),
		rdf.TypedLit("5", rdf.XSDInteger),
		rdf.TypedLit("42", rdf.XSDInteger),
		rdf.TypedLit("3.14", rdf.XSDDouble),
		rdf.BoolLit(true),
	}
	for i, p := range q.Where.Patterns {
		tp := p.(TriplePattern)
		if tp.O.Term != want[i] {
			t.Errorf("pattern %d object = %v, want %v", i, tp.O.Term, want[i])
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"no form", `WHERE { ?s ?p ?o . }`},
		{"unknown prefix", `SELECT * WHERE { ?s ex:p ?o . }`},
		{"no vars", `SELECT WHERE { ?s ?p ?o . }`},
		{"unterminated group", `SELECT * WHERE { ?s ?p ?o .`},
		{"trailing input", `SELECT * WHERE { ?s ?p ?o . } garbage:x`},
		{"bad limit", `SELECT * WHERE { ?s ?p ?o . } LIMIT x`},
		{"empty order by", `SELECT * WHERE { ?s ?p ?o . } ORDER BY`},
		{"unterminated iri", `SELECT * WHERE { ?s <http://p ?o . }`},
		{"unterminated string", `SELECT * WHERE { ?s <http://p> "abc . }`},
		{"bad regex", `SELECT * WHERE { ?s <http://p> ?o . FILTER REGEX(?o, "[") }`},
		{"bound non-var", `SELECT * WHERE { ?s <http://p> ?o . FILTER BOUND("x") }`},
		{"empty var", `SELECT ? WHERE { ?s <http://p> ?o . }`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse(c.src); err == nil {
				t.Errorf("no error for %q", c.src)
			}
		})
	}
}

func TestParseFilterExpressions(t *testing.T) {
	q, err := Parse(`SELECT * WHERE {
  ?s <http://p> ?o .
  FILTER (!(?o < 10) || ?o >= 100 && BOUND(?s))
  FILTER REGEX(STR(?o), "^a.*b$", "i")
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where.Filters) != 2 {
		t.Fatalf("filters = %d", len(q.Where.Filters))
	}
	// || binds looser than &&.
	or, ok := q.Where.Filters[0].(LogicExpr)
	if !ok || or.Op != "||" {
		t.Fatalf("top expr = %T %v", q.Where.Filters[0], q.Where.Filters[0])
	}
	if _, ok := or.L.(NotExpr); !ok {
		t.Errorf("left = %T, want NotExpr", or.L)
	}
	and, ok := or.R.(LogicExpr)
	if !ok || and.Op != "&&" {
		t.Errorf("right = %T %v", or.R, or.R)
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	src := `PREFIX ex: <http://ex.org/>
SELECT DISTINCT ?n WHERE { ?p a ex:Player . ?p ex:name ?n . OPTIONAL { ?p ex:h ?h . } FILTER (?h > 170) } ORDER BY ?n LIMIT 3`
	q1, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rendered := q1.String()
	q2, err := Parse(rendered)
	if err != nil {
		t.Fatalf("reparse of %q failed: %v", rendered, err)
	}
	if q2.String() != rendered {
		t.Errorf("String not stable:\n%s\n---\n%s", rendered, q2.String())
	}
	if !strings.Contains(rendered, "PREFIX ex:") {
		t.Error("prefixes lost in rendering")
	}
}

func TestParseVariableDollarSyntax(t *testing.T) {
	q, err := Parse(`SELECT $x WHERE { $x <http://p> ?y . }`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Variables[0] != "x" {
		t.Errorf("dollar variable = %v", q.Variables)
	}
}

func TestGroupAllVarsSorted(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?z <http://p> ?a . OPTIONAL { ?z <http://q> ?m . } FILTER (?k = 1) }`)
	vars := q.Where.AllVars()
	want := []string{"a", "k", "m", "z"}
	if len(vars) != len(want) {
		t.Fatalf("AllVars = %v", vars)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Fatalf("AllVars = %v, want %v", vars, want)
		}
	}
}

// --- property paths ---

func TestParsePathPrecedence(t *testing.T) {
	ex := func(s string) *Path { return Link(rdf.IRI("http://ex.org/" + s)) }
	inv := func(p *Path) *Path { return &Path{Kind: PathInv, Sub: p} }
	seq := func(l, r *Path) *Path { return &Path{Kind: PathSeq, L: l, R: r} }
	alt := func(l, r *Path) *Path { return &Path{Kind: PathAlt, L: l, R: r} }
	plus := func(p *Path) *Path { return &Path{Kind: PathPlus, Sub: p} }
	star := func(p *Path) *Path { return &Path{Kind: PathStar, Sub: p} }
	opt := func(p *Path) *Path { return &Path{Kind: PathOpt, Sub: p} }
	cases := []struct {
		src  string
		want *Path
	}{
		// | binds loosest, then /, then ^, then the postfix modifiers.
		{"^ex:p/ex:q|ex:r", alt(seq(inv(ex("p")), ex("q")), ex("r"))},
		{"ex:p|ex:q/ex:r+", alt(ex("p"), seq(ex("q"), plus(ex("r"))))},
		{"ex:p/ex:q+", seq(ex("p"), plus(ex("q")))},
		{"(ex:p/ex:q)+", plus(seq(ex("p"), ex("q")))},
		{"^ex:p+", inv(plus(ex("p")))},
		{"(^ex:p)+", plus(inv(ex("p")))},
		{"ex:p/(ex:q|ex:r)?", seq(ex("p"), opt(alt(ex("q"), ex("r"))))},
		{"^(ex:p/a)", inv(seq(ex("p"), Link(rdf.IRI(rdf.RDFType))))},
		{"ex:p*", star(ex("p"))},
	}
	for _, c := range cases {
		t.Run(c.src, func(t *testing.T) {
			q := MustParse(`PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ex:s ` + c.src + ` ?x . }`)
			pp, ok := q.Where.Patterns[0].(PathPattern)
			if !ok {
				t.Fatalf("pattern is %T, want PathPattern", q.Where.Patterns[0])
			}
			// Path.String renders parentheses exactly where precedence
			// requires them, so distinct trees render distinctly.
			if got, want := pp.Path.String(), c.want.String(); got != want {
				t.Fatalf("parsed %s, want %s", got, want)
			}
			// And the rendered query must reparse to the same tree.
			q2, err := Parse(q.String())
			if err != nil {
				t.Fatalf("reparse of %q: %v", q.String(), err)
			}
			if got := q2.Where.Patterns[0].(PathPattern).Path.String(); got != c.want.String() {
				t.Fatalf("round-trip parsed %s, want %s", got, c.want.String())
			}
		})
	}
}

func TestParsePathForms(t *testing.T) {
	// A trivial link stays a TriplePattern; predicate-object lists work
	// with paths; a bare variable predicate is still legal.
	q := MustParse(`PREFIX ex: <http://ex.org/> SELECT * WHERE {
	  ex:s ex:p ?x ; ex:q+ ?y , ?z .
	  ?s ?p ?o .
	}`)
	if _, ok := q.Where.Patterns[0].(TriplePattern); !ok {
		t.Errorf("trivial link pattern is %T, want TriplePattern", q.Where.Patterns[0])
	}
	// A parenthesized trivial link also collapses to a TriplePattern.
	q2 := MustParse(`PREFIX ex: <http://ex.org/> SELECT * WHERE { ex:s ((ex:p)) ?x . }`)
	tp, ok := q2.Where.Patterns[0].(TriplePattern)
	if !ok || tp.P.Term.Value != "http://ex.org/p" {
		t.Errorf("((ex:p)) pattern = %T %v, want TriplePattern ex:p", q2.Where.Patterns[0], q2.Where.Patterns[0])
	}
	for i := 1; i <= 2; i++ {
		pp, ok := q.Where.Patterns[i].(PathPattern)
		if !ok {
			t.Fatalf("pattern %d is %T, want PathPattern", i, q.Where.Patterns[i])
		}
		if pp.Path.Kind != PathPlus {
			t.Errorf("pattern %d path = %s", i, pp.Path)
		}
		if !pp.S.IsVar() && pp.S.Term.Value != "http://ex.org/s" {
			t.Errorf("pattern %d subject not shared: %v", i, pp.S)
		}
	}
	if _, ok := q.Where.Patterns[3].(TriplePattern); !ok {
		t.Errorf("variable-predicate pattern is %T", q.Where.Patterns[3])
	}
}

func TestParsePathErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"modifier without path", `SELECT * WHERE { ?s + ?o . }`},
		{"inverse of nothing", `SELECT * WHERE { ?s ^ ?o . }`},
		{"dangling sequence", `SELECT * WHERE { ?s <http://p>/ ?o . }`},
		{"dangling alternative", `SELECT * WHERE { ?s <http://p>| ?o . }`},
		{"unclosed group", `SELECT * WHERE { ?s (<http://p>|<http://q> ?o . }`},
		{"inverse of variable", `SELECT * WHERE { ?s ^?p ?o . }`},
		{"literal in path", `SELECT * WHERE { ?s <http://p>/"lit" ?o . }`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse(c.src); err == nil {
				t.Errorf("no error for %q", c.src)
			}
		})
	}
}

// --- aggregation ---

func TestParseAggregates(t *testing.T) {
	q := MustParse(`PREFIX ex: <http://ex.org/>
SELECT ?g (COUNT(DISTINCT ?x) AS ?n) (SUM(?v) AS ?total)
WHERE { ?g ex:p ?x . ?x ex:v ?v . }
GROUP BY ?g HAVING (?n > 2) (?total <= 10)`)
	if len(q.GroupBy) != 1 || q.GroupBy[0] != "g" {
		t.Errorf("GroupBy = %v", q.GroupBy)
	}
	want := []Aggregate{
		{Func: AggCount, Distinct: true, Var: "x", As: "n"},
		{Func: AggSum, Var: "v", As: "total"},
	}
	if len(q.Aggregates) != 2 || q.Aggregates[0] != want[0] || q.Aggregates[1] != want[1] {
		t.Errorf("Aggregates = %v", q.Aggregates)
	}
	if strings.Join(q.Variables, ",") != "g,n,total" {
		t.Errorf("Variables = %v", q.Variables)
	}
	if len(q.Having) != 2 {
		t.Errorf("Having = %v", q.Having)
	}

	// COUNT(*) leaves Var empty; MIN/MAX parse; implicit group (no
	// GROUP BY) is legal.
	q = MustParse(`SELECT (COUNT(*) AS ?n) (MIN(?o) AS ?lo) (MAX(?o) AS ?hi) WHERE { ?s ?p ?o . }`)
	if q.Aggregates[0].Var != "" || q.Aggregates[0].Func != AggCount {
		t.Errorf("COUNT(*) = %+v", q.Aggregates[0])
	}
	if q.Aggregates[1].Func != AggMin || q.Aggregates[2].Func != AggMax {
		t.Errorf("MIN/MAX = %+v", q.Aggregates[1:])
	}
}

func TestParseAggregateRoundTrip(t *testing.T) {
	src := `PREFIX ex: <http://ex.org/> SELECT ?g (COUNT(DISTINCT ?x) AS ?n) WHERE { ?g ex:p+ ?x . } GROUP BY ?g HAVING (?n > 1) ORDER BY ?g LIMIT 5`
	q1 := MustParse(src)
	rendered := q1.String()
	q2, err := Parse(rendered)
	if err != nil {
		t.Fatalf("reparse of %q: %v", rendered, err)
	}
	if q2.String() != rendered {
		t.Errorf("String not stable:\n%s\n---\n%s", rendered, q2.String())
	}
}

func TestParseAggregateErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"SUM of star", `SELECT (SUM(*) AS ?n) WHERE { ?s ?p ?o . }`},
		{"COUNT DISTINCT star", `SELECT (COUNT(DISTINCT *) AS ?n) WHERE { ?s ?p ?o . }`},
		{"missing AS", `SELECT (COUNT(?x) ?n) WHERE { ?s ?p ?x . }`},
		{"missing alias", `SELECT (COUNT(?x) AS) WHERE { ?s ?p ?x . }`},
		{"HAVING without grouping", `SELECT ?s WHERE { ?s ?p ?o . } HAVING (?s > 1)`},
		{"ungrouped projected var", `SELECT ?s (COUNT(*) AS ?n) WHERE { ?s ?p ?o . } GROUP BY ?o`},
		{"duplicate alias", `SELECT (COUNT(*) AS ?n) (SUM(?o) AS ?n) WHERE { ?s ?p ?o . }`},
		{"plain var duplicates alias", `SELECT ?n (COUNT(*) AS ?n) WHERE { ?s ?p ?o . }`},
		{"alias shadows WHERE var", `SELECT (COUNT(*) AS ?o) WHERE { ?s ?p ?o . }`},
		{"alias shadows group var", `SELECT ?s (COUNT(*) AS ?s) WHERE { ?s ?p ?o . } GROUP BY ?s`},
		{"star with GROUP BY", `SELECT * WHERE { ?s ?p ?o . } GROUP BY ?s`},
		{"ASK with GROUP BY", `ASK { ?s ?p ?o . } GROUP BY ?s`},
		{"empty GROUP BY", `SELECT ?s WHERE { ?s ?p ?o . } GROUP BY`},
		{"empty HAVING", `SELECT ?s WHERE { ?s ?p ?o . } GROUP BY ?s HAVING`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse(c.src); err == nil {
				t.Errorf("no error for %q", c.src)
			}
		})
	}
}
