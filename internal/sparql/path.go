package sparql

import (
	"math"
	"sync/atomic"

	"mdm/internal/rdf"
)

// This file implements SPARQL 1.1 property paths as a pull-based
// operator over TermID rows. A Path AST compiles (compilePath) to a
// pathExpr with inversion pushed down to the links — ^(p/q) ≡ ^q/^p,
// ^(p|q) ≡ ^p|^q, ^(p+) ≡ (^p)+, ^^p ≡ p — so evaluation only ever
// walks links forward or backward; there is no generic inverse
// operator at run time.
//
// Per the W3C semantics, link/sequence/alternative/inverse preserve
// solution multiplicity, while the closure operators (p+, p*, p?) are
// evaluated with *set* semantics (ALP): each reachable node is related
// to the start node exactly once, no matter how many distinct paths
// lead there. p* additionally relates every node to itself by the
// zero-length path — including constant endpoints the graph has never
// seen, which is why planPath interns constant endpoints instead of
// merely looking them up.
//
// The closure is a semi-naive fixpoint: a frontier stack seeded from
// the start node plus a visited bitset (visitedSet, pooled on the
// evaluator because nested closures like (p/q+)* need independent
// sets). Every node is expanded at most once, so a closure from one
// seed costs O(edges reachable) — cycles and self-loops terminate by
// construction. Cancellation is polled every 1024 node expansions on
// top of the per-row poll the surrounding operators already do.

// pathExpr is a Path compiled for ID-level evaluation: link predicates
// resolved to dictionary IDs (dead when never interned — such a link
// matches nothing, though zero-length closures over it still hold) and
// inversion folded into a per-link direction flag.
type pathExpr struct {
	kind PathKind // PathInv never appears after compilation
	id   rdf.TermID
	dead bool // link predicate not in the dictionary
	inv  bool // link traverses object -> subject
	sub  *pathExpr
	l, r *pathExpr
}

// compilePath resolves p against the evaluator's dictionary, pushing
// the pending inversion inv down to the links.
func (e *evaluator) compilePath(p *Path, inv bool) *pathExpr {
	switch p.Kind {
	case PathLink:
		id, ok := e.dict.ID(p.IRI)
		return &pathExpr{kind: PathLink, id: id, dead: !ok, inv: inv}
	case PathInv:
		return e.compilePath(p.Sub, !inv)
	case PathSeq:
		l, r := e.compilePath(p.L, inv), e.compilePath(p.R, inv)
		if inv {
			l, r = r, l
		}
		return &pathExpr{kind: PathSeq, l: l, r: r}
	case PathAlt:
		return &pathExpr{kind: PathAlt, l: e.compilePath(p.L, inv), r: e.compilePath(p.R, inv)}
	default: // PathPlus, PathStar, PathOpt
		return &pathExpr{kind: p.Kind, sub: e.compilePath(p.Sub, inv)}
	}
}

// pathPlan is a PathPattern planned against a fixed active graph: the
// path compiled in both directions (rev answers "which subjects reach
// this object" when only the object is bound) and the endpoints
// resolved to slots or interned constant IDs.
type pathPlan struct {
	g        *rdf.Graph
	fwd, rev *pathExpr
	sID, oID rdf.TermID
	sSlot    int // -1 for a constant subject
	oSlot    int // -1 for a constant object
	soSame   bool
	est      float64 // estimated emitted (s, o) pairs, planner only
}

func (*pathPlan) patternPlan() {}

// planPath compiles one path pattern and updates the planner's running
// estimates. Constant endpoints are interned, not just looked up: a
// term the dictionary has never seen still satisfies zero-length p*
// and p? paths, so it needs a live ID. (Interning during planning can
// grow the dictionary past the length the plan was stamped with; the
// next evaluation then replans once and re-interns idempotently, after
// which the cache is stable — see docs/QUERY_PLANNING.md.)
func (e *evaluator) planPath(pat PathPattern, g *rdf.Graph, pc *planCtx) *pathPlan {
	p := &pathPlan{
		g:   g,
		fwd: e.compilePath(pat.Path, false),
		rev: e.compilePath(pat.Path, true),
	}
	if pat.S.IsVar() {
		p.sID, p.sSlot = unboundID, e.lay.index[pat.S.Var]
	} else {
		p.sID, p.sSlot = e.dict.Intern(pat.S.Term), -1
	}
	if pat.O.IsVar() {
		p.oID, p.oSlot = unboundID, e.lay.index[pat.O.Var]
	} else {
		p.oID, p.oSlot = e.dict.Intern(pat.O.Term), -1
	}
	p.soSame = p.sSlot >= 0 && p.sSlot == p.oSlot
	p.est = pathExprCost(g, p.fwd)
	// Row-estimate update: with an endpoint pinned (a constant, or a
	// slot bound by earlier patterns) the per-row fan-out is roughly
	// the pattern's pair count spread over the graph's nodes; with both
	// ends free every input row fans out to the full pair set.
	fanout := p.est
	pinned := p.sSlot < 0 || p.oSlot < 0 ||
		pc.bound[p.sSlot] || pc.bound[p.oSlot]
	if pinned {
		fanout = p.est / math.Max(1, float64(g.Len()))
	}
	pc.rows = math.Max(1, pc.rows*fanout)
	return p
}

// pathExprCost estimates how many (s, o) pairs a compiled path relates,
// from per-link index cardinalities (the cost model is documented in
// docs/QUERY_PLANNING.md).
func pathExprCost(g *rdf.Graph, px *pathExpr) float64 {
	n := math.Max(1, float64(g.Len()))
	switch px.kind {
	case PathLink:
		if px.dead {
			return 0
		}
		return float64(g.CountIDs(rdf.AnyID, px.id, rdf.AnyID))
	case PathSeq:
		return pathExprCost(g, px.l) * pathExprCost(g, px.r) / n
	case PathAlt:
		return pathExprCost(g, px.l) + pathExprCost(g, px.r)
	case PathPlus:
		return 2 * pathExprCost(g, px.sub)
	case PathStar:
		return 2*pathExprCost(g, px.sub) + n
	default: // PathOpt
		return pathExprCost(g, px.sub) + n
	}
}

// pathASTEst is the pre-planning (term-level) form of pathExprCost,
// used by orderPatterns to place path patterns by selectivity before
// constants are resolved to IDs.
func pathASTEst(g *rdf.Graph, p *Path) int {
	n := g.Len()
	if n == 0 {
		n = 1
	}
	switch p.Kind {
	case PathLink:
		return g.Count(rdf.Any, p.IRI, rdf.Any)
	case PathInv:
		return pathASTEst(g, p.Sub)
	case PathSeq:
		return pathASTEst(g, p.L) * pathASTEst(g, p.R) / n
	case PathAlt:
		return pathASTEst(g, p.L) + pathASTEst(g, p.R)
	case PathPlus:
		return 2 * pathASTEst(g, p.Sub)
	case PathStar:
		return 2*pathASTEst(g, p.Sub) + n
	default: // PathOpt
		return pathASTEst(g, p.Sub) + n
	}
}

// pathExpansions counts fixpoint node expansions across all
// evaluations. Tests read its delta to pin the O(edges) bound on
// closure evaluation (no exponential path re-enumeration on cyclic
// graphs).
var pathExpansions atomic.Int64

// visitedSet is a sparse-reset bitset over TermIDs: add tracks touched
// IDs so reset clears only what was set (or the whole slab when nearly
// all of it was).
type visitedSet struct {
	bits    []uint64
	touched []rdf.TermID
}

func (v *visitedSet) has(id rdf.TermID) bool {
	w := int(id >> 6)
	return w < len(v.bits) && v.bits[w]&(1<<(id&63)) != 0
}

func (v *visitedSet) add(id rdf.TermID) {
	w := int(id >> 6)
	if w >= len(v.bits) {
		grown := make([]uint64, max(w+1, 2*len(v.bits), 64))
		copy(grown, v.bits)
		v.bits = grown
	}
	v.bits[w] |= 1 << (id & 63)
	v.touched = append(v.touched, id)
}

func (v *visitedSet) reset() {
	if len(v.touched) >= len(v.bits) {
		clear(v.bits)
	} else {
		for _, id := range v.touched {
			v.bits[int(id>>6)] &^= 1 << (id & 63)
		}
	}
	v.touched = v.touched[:0]
}

// acquireVisited returns a cleared visitedSet from the evaluator's
// pool. Closures nest (the step of one fixpoint may itself contain a
// fixpoint), so sets are pooled rather than owned by the operator.
func (e *evaluator) acquireVisited() *visitedSet {
	if n := len(e.visitedPool); n > 0 {
		v := e.visitedPool[n-1]
		e.visitedPool = e.visitedPool[:n-1]
		return v
	}
	return &visitedSet{}
}

func (e *evaluator) releaseVisited(v *visitedSet) {
	v.reset()
	e.visitedPool = append(e.visitedPool, v)
}

// pathEach calls f for every node reachable from `from` over px.
// Multiplicity follows the W3C semantics: links, sequences and
// alternatives are multiset-preserving (f may see the same target
// repeatedly when distinct paths lead there), the closure operators
// deliver each target exactly once. Returns false when f aborted or
// evaluation was canceled (e.err is then set).
func (e *evaluator) pathEach(px *pathExpr, g *rdf.Graph, from rdf.TermID, f func(rdf.TermID) bool) bool {
	switch px.kind {
	case PathLink:
		if px.dead {
			return true
		}
		ok := true
		if px.inv {
			g.EachMatchIDs(rdf.AnyID, px.id, from, func(ms, _, _ rdf.TermID) bool {
				ok = f(ms)
				return ok
			})
		} else {
			g.EachMatchIDs(from, px.id, rdf.AnyID, func(_, _, mo rdf.TermID) bool {
				ok = f(mo)
				return ok
			})
		}
		return ok
	case PathSeq:
		return e.pathEach(px.l, g, from, func(mid rdf.TermID) bool {
			return e.pathEach(px.r, g, mid, f)
		})
	case PathAlt:
		return e.pathEach(px.l, g, from, f) && e.pathEach(px.r, g, from, f)
	case PathOpt:
		vs := e.acquireVisited()
		defer e.releaseVisited(vs)
		vs.add(from)
		if !f(from) {
			return false
		}
		return e.pathEach(px.sub, g, from, func(t rdf.TermID) bool {
			if vs.has(t) {
				return true
			}
			vs.add(t)
			return f(t)
		})
	default: // PathPlus, PathStar
		return e.pathClosure(px, g, from, f)
	}
}

// pathClosure evaluates p+ / p* from one seed: a depth-first frontier
// with a visited bitset, each node expanded once, each reached node
// emitted once. p* emits the seed itself first (zero-length path); p+
// emits it only if a cycle leads back.
func (e *evaluator) pathClosure(px *pathExpr, g *rdf.Graph, from rdf.TermID, f func(rdf.TermID) bool) bool {
	vs := e.acquireVisited()
	defer e.releaseVisited(vs)
	frontier := e.frontierPool
	e.frontierPool = nil // guard against nested closures sharing the buffer
	frontier = frontier[:0]
	expansions := int64(0)
	defer func() {
		pathExpansions.Add(expansions)
		if expansions > 0 {
			obsPathExpansions.Add(float64(expansions))
		}
		e.frontierPool = frontier
	}()
	ok := true
	visit := func(t rdf.TermID) bool {
		if vs.has(t) {
			if mutation == mutPathDupEmit {
				ok = f(t) // seeded bug: re-emit instead of deduplicating
				return ok
			}
			return true
		}
		vs.add(t)
		frontier = append(frontier, t)
		ok = f(t)
		return ok
	}
	if px.kind == PathStar {
		if !visit(from) {
			return false
		}
	} else {
		// p+: the seed is not emitted for free — expand its edges to
		// prime the frontier; the seed joins the result only via a cycle.
		expansions++
		if !e.pathEach(px.sub, g, from, visit) {
			return false
		}
	}
	for len(frontier) > 0 {
		n := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		expansions++
		if expansions&1023 == 0 && !e.poll() {
			return false
		}
		if !e.pathEach(px.sub, g, n, visit) {
			return ok
		}
	}
	return ok
}

// graphNodes returns every node of g (distinct subjects and objects),
// cached per evaluation: both-ends-unbound path patterns range over
// it, because p* relates every node to itself.
func (e *evaluator) graphNodes(g *rdf.Graph) []rdf.TermID {
	if ns, ok := e.pathNodes[g]; ok {
		return ns
	}
	vs := e.acquireVisited()
	defer e.releaseVisited(vs)
	var ns []rdf.TermID
	g.EachMatchIDs(rdf.AnyID, rdf.AnyID, rdf.AnyID, func(ms, _, mo rdf.TermID) bool {
		if !vs.has(ms) {
			vs.add(ms)
			ns = append(ns, ms)
		}
		if !vs.has(mo) {
			vs.add(mo)
			ns = append(ns, mo)
		}
		return true
	})
	if e.pathNodes == nil {
		e.pathNodes = make(map[*rdf.Graph][]rdf.TermID)
	}
	e.pathNodes[g] = ns
	return ns
}

// pathIter streams one path pattern: per input row it materializes the
// (subject, object) pairs consistent with the row's endpoint bindings
// into buf, then emits them composed into its scratch row.
type pathIter struct {
	e   *evaluator
	src rowIter
	p   *pathPlan

	scratch []rdf.TermID
	buf     []rdf.TermID // flat (s, o) pairs for the current input row
	pos     int
}

func (it *pathIter) next() []rdf.TermID {
	p := it.p
	for {
		if it.pos < len(it.buf) {
			if p.sSlot >= 0 {
				it.scratch[p.sSlot] = it.buf[it.pos]
			}
			if p.oSlot >= 0 {
				it.scratch[p.oSlot] = it.buf[it.pos+1]
			}
			it.pos += 2
			return it.scratch
		}
		if !it.e.poll() {
			return nil
		}
		row := it.src.next()
		if row == nil {
			return nil
		}
		copy(it.scratch, row)
		it.buf, it.pos = it.buf[:0], 0
		s, o := p.sID, p.oID
		if p.sSlot >= 0 {
			s = row[p.sSlot]
		}
		if p.oSlot >= 0 {
			o = row[p.oSlot]
		}
		it.buf = it.e.pathPairs(it.buf, p, s, o)
		if it.e.err != nil {
			return nil
		}
	}
}

// pathPairs appends every (subject, object) pair p's path relates that
// is consistent with the given endpoint values (unboundID = free).
// A bound subject walks the path forward; subject free but object
// bound walks the reversed compilation from the object; both free
// seeds a forward walk from every graph node.
func (e *evaluator) pathPairs(buf []rdf.TermID, p *pathPlan, s, o rdf.TermID) []rdf.TermID {
	switch {
	case s != unboundID:
		e.pathEach(p.fwd, p.g, s, func(t rdf.TermID) bool {
			if o == unboundID || o == t {
				buf = append(buf, s, t)
			}
			return true
		})
	case o != unboundID:
		e.pathEach(p.rev, p.g, o, func(t rdf.TermID) bool {
			buf = append(buf, t, o)
			return true
		})
	default:
		for _, n := range e.graphNodes(p.g) {
			if e.err != nil {
				break
			}
			e.pathEach(p.fwd, p.g, n, func(t rdf.TermID) bool {
				if !p.soSame || t == n {
					buf = append(buf, n, t)
				}
				return true
			})
		}
	}
	return buf
}
