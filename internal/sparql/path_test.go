package sparql

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"mdm/internal/rdf"
)

func pathEx(s string) rdf.Term { return rdf.IRI("http://ex.org/" + s) }

// edgeGraph builds a dataset whose default graph has one p-edge per
// pair.
func edgeGraph(edges [][2]string) *rdf.Dataset {
	ds := rdf.NewDataset()
	for _, e := range edges {
		ds.Default().MustAdd(rdf.T(pathEx(e[0]), pathEx("p"), pathEx(e[1])))
	}
	return ds
}

// TestPathCycleSafety pins termination and oracle agreement for
// closures over graphs where naive expansion would loop forever:
// self-loops, 2-cycles, and cycles entangled with side branches. Each
// query also runs through all three forced join strategies and the
// cursor API via checkEquivalence.
func TestPathCycleSafety(t *testing.T) {
	graphs := map[string][][2]string{
		"self-loop":       {{"a", "a"}},
		"two-cycle":       {{"a", "b"}, {"b", "a"}},
		"cycle with tail": {{"a", "b"}, {"b", "c"}, {"c", "a"}, {"c", "d"}},
		"diamond cycle":   {{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}, {"d", "a"}},
	}
	queries := []string{
		`PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ex:a ex:p+ ?x }`,
		`PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ex:a ex:p* ?x }`,
		`PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x ex:p+ ex:a }`,
		`PREFIX ex: <http://ex.org/> SELECT ?x ?y WHERE { ?x ex:p+ ?y }`,
		`PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x ex:p* ?x }`,
		`PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ex:a (^ex:p)+ ?x }`,
		`PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ex:a (ex:p/ex:p)+ ?x }`,
	}
	for name, edges := range graphs {
		t.Run(name, func(t *testing.T) {
			ds := edgeGraph(edges)
			for _, src := range queries {
				checkEquivalence(t, ds, MustParse(src), -1)
			}
		})
	}
}

// TestPathZeroLength pins the SPARQL zero-length-path corner cases: *
// and ? match every subject/object node to itself, and a constant
// endpoint matches itself even when the graph never mentions it.
func TestPathZeroLength(t *testing.T) {
	ds := edgeGraph([][2]string{{"a", "b"}})

	res, err := Run(ds, `PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ex:ghost ex:p* ?x }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("ghost p* rows = %d, want 1\n%s", res.Len(), res.Table())
	}
	if x, _ := res.Term(0, "x"); x != pathEx("ghost") {
		t.Fatalf("ghost p* binds %v, want itself", x)
	}

	// Both ends free: each of the graph's nodes (a and b) reaches
	// itself, plus a reaches b in one step.
	res, err = Run(ds, `PREFIX ex: <http://ex.org/> SELECT ?x ?y WHERE { ?x ex:p* ?y }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("free p* rows = %d, want 3\n%s", res.Len(), res.Table())
	}

	// ASK with a constant zero-length match.
	res, err = Run(ds, `PREFIX ex: <http://ex.org/> ASK { ex:ghost ex:p? ex:ghost }`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Bool {
		t.Fatal("ghost p? ghost = false, want true")
	}

	// p+ has no zero-length component: an unconnected constant yields
	// nothing.
	res, err = Run(ds, `PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ex:ghost ex:p+ ?x }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Fatalf("ghost p+ rows = %d, want 0", res.Len())
	}

	// Oracle agreement for the same shapes.
	for _, src := range []string{
		`PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ex:ghost ex:p* ?x }`,
		`PREFIX ex: <http://ex.org/> SELECT ?x ?y WHERE { ?x ex:p? ?y }`,
		`PREFIX ex: <http://ex.org/> SELECT ?x ?y WHERE { ?x ex:p* ?y }`,
	} {
		checkEquivalence(t, ds, MustParse(src), -1)
	}
}

// cycleDataset builds a single directed n-node cycle v0 -> v1 -> ... ->
// v(n-1) -> v0.
func cycleDataset(n int) *rdf.Dataset {
	ds := rdf.NewDataset()
	p := pathEx("p")
	for i := 0; i < n; i++ {
		ds.Default().MustAdd(rdf.T(
			rdf.IRI(fmt.Sprintf("http://ex.org/v%d", i)), p,
			rdf.IRI(fmt.Sprintf("http://ex.org/v%d", (i+1)%n))))
	}
	return ds
}

// TestPathClosureLinearWork pins the semi-naive fixpoint's complexity:
// over a 10k-node cycle, v0 p+ ?x must reach all 10k nodes while
// expanding each node once — O(edges), not O(nodes * edges). The
// expansion counter gets a 2.5x allowance for the extra seed expansion
// and future bookkeeping, which is still orders of magnitude below the
// ~10^8 of a quadratic walk.
func TestPathClosureLinearWork(t *testing.T) {
	const n = 10_000
	ds := cycleDataset(n)
	q := MustParse(`PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ex:v0 ex:p+ ?x }`)

	before := pathExpansions.Load()
	res, err := Eval(ds, q)
	if err != nil {
		t.Fatal(err)
	}
	expanded := pathExpansions.Load() - before

	if res.Len() != n {
		t.Fatalf("rows = %d, want %d", res.Len(), n)
	}
	if max := int64(5 * n / 2); expanded > max {
		t.Fatalf("fixpoint expanded %d nodes for %d edges; O(edges) bound is %d", expanded, n, max)
	}
}

// TestPathCancelMidClosure cancels deterministically inside the
// fixpoint loop: the 10k-node closure polls the context every 1024
// expansions, so a countdown of 3 expires while the frontier is still
// being drained, long before the first row reaches the caller.
func TestPathCancelMidClosure(t *testing.T) {
	ds := cycleDataset(10_000)
	q := MustParse(`PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ex:v0 ex:p+ ?x }`)

	ctx := &countdownCtx{Context: context.Background()}
	ctx.n.Store(3)
	cur, err := EvalCursor(ds, q)
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for cur.Next(ctx) {
		rows++
	}
	if rows != 0 {
		t.Fatalf("Next yielded %d rows under a canceled context", rows)
	}
	if !errors.Is(cur.Err(), context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", cur.Err())
	}
	if cur.Next(context.Background()) {
		t.Fatal("Next succeeded after cancellation")
	}
}

// TestPathPagingPrefix pins LIMIT/OFFSET pages of a path query against
// slices of the full canonical drain.
func TestPathPagingPrefix(t *testing.T) {
	ds := cycleDataset(100)
	full, err := Run(ds, `PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ex:v0 ex:p+ ?x }`)
	if err != nil {
		t.Fatal(err)
	}
	if full.Len() != 100 {
		t.Fatalf("full drain rows = %d, want 100", full.Len())
	}
	for _, page := range []struct{ off, lim int }{{0, 10}, {25, 25}, {90, 20}, {100, 5}} {
		q := MustParse(fmt.Sprintf(
			`PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ex:v0 ex:p+ ?x } LIMIT %d OFFSET %d`, page.lim, page.off))
		res, err := Eval(ds, q)
		if err != nil {
			t.Fatal(err)
		}
		want := full.Len() - page.off
		if want < 0 {
			want = 0
		}
		if want > page.lim {
			want = page.lim
		}
		if res.Len() != want {
			t.Fatalf("OFFSET %d LIMIT %d rows = %d, want %d", page.off, page.lim, res.Len(), want)
		}
		for i := 0; i < res.Len(); i++ {
			got, _ := res.Term(i, "x")
			exp, _ := full.Term(page.off+i, "x")
			if got != exp {
				t.Fatalf("page row %d = %v, full row %d = %v", i, got, page.off+i, exp)
			}
		}
	}
}

// BenchmarkPathClosure measures the fixpoint on the two extreme graph
// shapes: a deep chain (frontier of one, maximal depth) and a wide
// fan-out (one expansion, maximal frontier).
func BenchmarkPathClosure(b *testing.B) {
	const n = 10_000
	bench := func(b *testing.B, ds *rdf.Dataset, src string, rows int) {
		q := MustParse(src)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := Eval(ds, q)
			if err != nil {
				b.Fatal(err)
			}
			if res.Len() != rows {
				b.Fatalf("rows = %d, want %d", res.Len(), rows)
			}
		}
	}
	b.Run("deep-chain", func(b *testing.B) {
		// A cycle is a chain whose last edge closes it: depth n.
		bench(b, cycleDataset(n),
			`PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ex:v0 ex:p+ ?x }`, n)
	})
	b.Run("wide-fanout", func(b *testing.B) {
		ds := rdf.NewDataset()
		for i := 0; i < n; i++ {
			ds.Default().MustAdd(rdf.T(pathEx("root"), pathEx("p"),
				rdf.IRI(fmt.Sprintf("http://ex.org/leaf%d", i))))
		}
		bench(b, ds,
			`PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ex:root ex:p+ ?x }`, n)
	})
}
