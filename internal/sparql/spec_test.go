package sparql

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"mdm/internal/rdf"
)

// Randomized equivalence harness: every generated query/graph pair is
// evaluated through both the ID-row engine (Eval) and the retained
// Binding-map oracle (refEval, oracle_test.go), and the two solution
// multisets must be identical. Generation is seeded, so failures
// reproduce by seed number.
//
// Generator invariant: LIMIT/OFFSET are only generated *without* ORDER
// BY. Without ORDER BY both engines canonically sort by all projected
// columns, a total order up to row identity, so page selection is
// multiset-deterministic; ORDER BY keys, in contrast, may tie distinct
// rows (numeric comparison even ties distinct terms such as "3" and
// "3"^^xsd:integer), making the page cut legitimately engine-dependent.

const specPairs = 300

// --- vocabulary ---

var (
	specSubjects = []rdf.Term{
		rdf.IRI("http://ex.org/s0"), rdf.IRI("http://ex.org/s1"),
		rdf.IRI("http://ex.org/s2"), rdf.IRI("http://ex.org/s3"),
		rdf.IRI("http://ex.org/s4"), rdf.Blank("b0"), rdf.Blank("b1"),
	}
	specPreds = []rdf.Term{
		rdf.IRI("http://ex.org/p0"), rdf.IRI("http://ex.org/p1"),
		rdf.IRI("http://ex.org/p2"), rdf.IRI("http://ex.org/p3"),
	}
	specObjects = []rdf.Term{
		rdf.IRI("http://ex.org/s0"), rdf.IRI("http://ex.org/s2"),
		rdf.IRI("http://ex.org/o0"), rdf.Lit("v0"), rdf.Lit("v1"),
		rdf.Lit("3"), rdf.IntLit(1), rdf.IntLit(3), rdf.IntLit(7),
		rdf.FloatLit(2.5), rdf.LangLit("hola", "es"), rdf.Blank("b0"),
	}
	specGraphNames = []rdf.Term{
		rdf.IRI("http://ex.org/g0"), rdf.IRI("http://ex.org/g1"),
	}
	specVars = []string{"a", "b", "c", "d", "e"}
)

func pick[T any](r *rand.Rand, xs []T) T { return xs[r.Intn(len(xs))] }

func genTriple(r *rand.Rand) rdf.Triple {
	return rdf.T(pick(r, specSubjects), pick(r, specPreds), pick(r, specObjects))
}

func genDataset(r *rand.Rand) *rdf.Dataset {
	ds := rdf.NewDataset()
	def := ds.Default()
	for i, n := 0, 5+r.Intn(20); i < n; i++ {
		def.MustAdd(genTriple(r))
	}
	for _, name := range specGraphNames {
		if r.Intn(3) == 0 {
			continue // sometimes the named graph does not exist at all
		}
		g := ds.Graph(name)
		for i, n := 0, r.Intn(10); i < n; i++ {
			g.MustAdd(genTriple(r))
		}
	}
	return ds
}

// --- query generation ---

// genNode draws an unanchored pattern node (may match nothing).
func genNode(r *rand.Rand, pos int) Node { // pos: 0=subject 1=predicate 2=object
	switch pos {
	case 0:
		if r.Intn(10) < 6 {
			return V(pick(r, specVars))
		}
		return N(pick(r, specSubjects))
	case 1:
		if r.Intn(10) < 3 {
			return V(pick(r, specVars))
		}
		return N(pick(r, specPreds))
	default:
		if r.Intn(10) < 5 {
			return V(pick(r, specVars))
		}
		return N(pick(r, specObjects))
	}
}

func genFilter(r *rand.Rand, depth int) Expr {
	switch r.Intn(7) {
	case 0:
		return BoundExpr{Name: pick(r, specVars)}
	case 1:
		op := pick(r, []string{"=", "!=", "<", "<=", ">", ">="})
		return CmpExpr{Op: op, L: VarExpr{Name: pick(r, specVars)}, R: ConstExpr{Term: rdf.IntLit(int64(r.Intn(8)))}}
	case 2:
		op := pick(r, []string{"=", "!="})
		return CmpExpr{Op: op, L: VarExpr{Name: pick(r, specVars)}, R: ConstExpr{Term: pick(r, specObjects)}}
	case 3:
		return CmpExpr{Op: "=", L: StrExpr{X: VarExpr{Name: pick(r, specVars)}}, R: ConstExpr{Term: rdf.Lit("v0")}}
	case 4:
		re, err := NewRegexExpr(VarExpr{Name: pick(r, specVars)}, "^v", pick(r, []string{"", "i"}))
		if err != nil {
			panic(err)
		}
		return re
	case 5:
		if depth > 0 {
			return NotExpr{X: genFilter(r, depth-1)}
		}
		return BoundExpr{Name: pick(r, specVars)}
	default:
		if depth > 0 {
			op := pick(r, []string{"&&", "||"})
			return LogicExpr{Op: op, L: genFilter(r, depth-1), R: genFilter(r, depth-1)}
		}
		return CmpExpr{Op: "=", L: VarExpr{Name: pick(r, specVars)}, R: VarExpr{Name: pick(r, specVars)}}
	}
}

//
// Generation is witness-driven: a specGen carries a variable assignment
// (the "witness") that is extended as patterns are generated, and most
// patterns are anchored on a stored triple consistent with that
// assignment. The witness is a solution of the generated BGP by
// construction, so most queries return rows and the harness compares
// populated multisets instead of vacuously equal empty ones. A fraction
// of patterns remain unanchored for empty-join coverage, and filters
// are free to reject the witness.

type specGen struct {
	r   *rand.Rand
	ds  *rdf.Dataset
	env map[string]rdf.Term // witness assignment, shared across the query
}

// triplesFor returns the triples of the graph a group runs against
// (zero name = default graph).
func (g *specGen) triplesFor(name rdf.Term) []rdf.Triple {
	if name.IsZero() {
		return g.ds.Default().Triples()
	}
	gr, ok := g.ds.Lookup(name)
	if !ok {
		return nil
	}
	return gr.Triples()
}

// node turns one position of an anchored triple into a pattern node:
// with probability varProb/10 a variable consistent with the witness
// (unassigned, or already assigned to exactly this term), else the
// term itself as a constant.
func (g *specGen) node(term rdf.Term, varProb int) Node {
	if g.r.Intn(10) >= varProb {
		return N(term)
	}
	for try := 0; try < 3; try++ {
		v := pick(g.r, specVars)
		if cur, ok := g.env[v]; !ok || cur == term {
			g.env[v] = term
			return V(v)
		}
	}
	return N(term)
}

func (g *specGen) triplePattern(ts []rdf.Triple) TriplePattern {
	if len(ts) == 0 || g.r.Intn(10) >= 8 {
		// Unanchored: may well match nothing (empty-join coverage).
		return TriplePattern{S: genNode(g.r, 0), P: genNode(g.r, 1), O: genNode(g.r, 2)}
	}
	// Prefer a stored triple consistent with the witness assignment so
	// far; fall back to any stored triple after a few tries.
	t := pick(g.r, ts)
	for try := 0; try < 4; try++ {
		cand := pick(g.r, ts)
		if g.consistent(cand) {
			t = cand
			break
		}
	}
	return TriplePattern{S: g.node(t.S, 7), P: g.node(t.P, 3), O: g.node(t.O, 6)}
}

// consistent reports whether the triple could extend the witness (no
// position conflicts with an assigned variable's term — approximated by
// value overlap: a triple reusing already-witnessed terms is favored).
func (g *specGen) consistent(t rdf.Triple) bool {
	if len(g.env) == 0 {
		return true
	}
	for _, v := range g.env {
		if t.S == v || t.P == v || t.O == v {
			return true
		}
	}
	return false
}

// group generates a group graph pattern evaluated against the graph
// whose triples are ts. nested guards against deep recursion.
func (g *specGen) group(ts []rdf.Triple, nested bool) *Group {
	out := &Group{}
	for i, n := 0, 1+g.r.Intn(3); i < n; i++ {
		out.Patterns = append(out.Patterns, g.triplePattern(ts))
	}
	if !nested {
		if g.r.Intn(10) < 3 {
			out.Patterns = append(out.Patterns, Optional{Group: g.group(ts, true)})
		}
		if g.r.Intn(10) < 3 {
			out.Patterns = append(out.Patterns, Union{Branches: []*Group{g.group(ts, true), g.group(ts, true)}})
		}
		if g.r.Intn(10) < 3 {
			var name Node
			var sub []rdf.Triple
			switch g.r.Intn(4) {
			case 0:
				gname := pick(g.r, specGraphNames)
				name = V("g")
				sub = g.triplesFor(gname) // witness graph for anchoring
			case 1:
				name = N(rdf.IRI("http://ex.org/gMissing"))
			default:
				gname := pick(g.r, specGraphNames)
				name = N(gname)
				sub = g.triplesFor(gname)
			}
			out.Patterns = append(out.Patterns, GraphPattern{Name: name, Group: g.group(sub, true)})
		}
		// Shuffle so OPTIONAL/UNION/GRAPH also appear before triples.
		g.r.Shuffle(len(out.Patterns), func(i, j int) {
			out.Patterns[i], out.Patterns[j] = out.Patterns[j], out.Patterns[i]
		})
	}
	if g.r.Intn(10) < 4 {
		out.Filters = append(out.Filters, genFilter(g.r, 2))
	}
	return out
}

func genQuery(r *rand.Rand, ds *rdf.Dataset) *Query {
	g := &specGen{r: r, ds: ds, env: map[string]rdf.Term{}}
	q := &Query{Limit: -1, Where: g.group(g.triplesFor(rdf.Term{}), false)}
	if r.Intn(8) == 0 {
		q.Form = FormAsk
		return q
	}
	q.Distinct = r.Intn(10) < 3
	if r.Intn(10) < 3 {
		q.Star = true
	} else {
		n := 1 + r.Intn(3)
		seen := map[string]bool{}
		for i := 0; i < n; i++ {
			v := pick(r, specVars)
			switch r.Intn(12) {
			case 0:
				v = "unbound" // projection of a variable the pattern never binds
			case 1, 2:
				v = "g" // the GRAPH name variable, when one was generated
			}
			if !seen[v] {
				seen[v] = true
				q.Variables = append(q.Variables, v)
			}
		}
	}
	switch r.Intn(10) {
	case 0, 1, 2, 3: // ORDER BY, no paging
		for i, n := 0, 1+r.Intn(2); i < n; i++ {
			q.OrderBy = append(q.OrderBy, OrderKey{Var: pick(r, specVars), Desc: r.Intn(2) == 0})
		}
	case 4, 5: // paging without ORDER BY (canonical sort is total)
		if r.Intn(2) == 0 {
			q.Limit = r.Intn(12)
		}
		if r.Intn(2) == 0 {
			q.Offset = r.Intn(8) // sometimes beyond the result size
		}
	}
	return q
}

// --- multiset comparison ---

func solKey(vars []string, b Binding) string {
	var sb strings.Builder
	for _, v := range vars {
		if t, ok := b[v]; ok {
			sb.WriteString(t.String())
		}
		sb.WriteByte('\x00')
	}
	return sb.String()
}

func multiset(vars []string, sols []Binding) map[string]int {
	m := make(map[string]int, len(sols))
	for _, s := range sols {
		m[solKey(vars, s)]++
	}
	return m
}

func diffMultisets(a, b map[string]int) string {
	keys := map[string]bool{}
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	var sb strings.Builder
	for _, k := range sorted {
		if a[k] != b[k] {
			fmt.Fprintf(&sb, "  engine=%d oracle=%d row=%q\n", a[k], b[k], k)
		}
	}
	return sb.String()
}

func datasetDump(ds *rdf.Dataset) string {
	var sb strings.Builder
	for _, q := range ds.Quads() {
		sb.WriteString(q.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// checkEquivalence evaluates q through both engines and fails the test
// on any divergence.
func checkEquivalence(t *testing.T, ds *rdf.Dataset, q *Query, seed int64) {
	t.Helper()
	got, gerr := Eval(ds, q)
	want, werr := refEval(ds, q)
	if (gerr != nil) != (werr != nil) {
		t.Fatalf("seed %d: engine err = %v, oracle err = %v\nquery: %s", seed, gerr, werr, q)
	}
	if gerr != nil {
		return
	}
	if q.Form == FormAsk {
		if got.Bool != want.Bool {
			t.Fatalf("seed %d: ASK engine=%v oracle=%v\nquery: %s\ndata:\n%s", seed, got.Bool, want.Bool, q, datasetDump(ds))
		}
		checkJoinStrategies(t, ds, q, seed, want.Bool, nil)
		return
	}
	if strings.Join(got.Vars, ",") != strings.Join(want.Vars, ",") {
		t.Fatalf("seed %d: vars engine=%v oracle=%v\nquery: %s", seed, got.Vars, want.Vars, q)
	}
	sols := got.Solutions()
	if got.Len() != len(sols) || got.Len() != len(want.Sols) {
		t.Fatalf("seed %d: rows engine=%d decoded=%d oracle=%d\nquery: %s\ndata:\n%s",
			seed, got.Len(), len(sols), len(want.Sols), q, datasetDump(ds))
	}
	me, mo := multiset(got.Vars, sols), multiset(want.Vars, want.Sols)
	if len(me) != len(mo) {
		t.Fatalf("seed %d: %d distinct rows vs oracle %d\nquery: %s\ndata:\n%sdiff:\n%s",
			seed, len(me), len(mo), q, datasetDump(ds), diffMultisets(me, mo))
	}
	for k, n := range me {
		if mo[k] != n {
			t.Fatalf("seed %d: multiset mismatch\nquery: %s\ndata:\n%sdiff:\n%s",
				seed, q, datasetDump(ds), diffMultisets(me, mo))
		}
	}
	// Cross-check the cell accessor against the decoded bindings.
	for i := 0; i < got.Len(); i++ {
		for _, v := range got.Vars {
			ct, cok := got.Term(i, v)
			bt, bok := sols[i][v]
			if cok != bok || ct != bt {
				t.Fatalf("seed %d: Term(%d,%q)=(%v,%v) but Solutions()=(%v,%v)", seed, i, v, ct, cok, bt, bok)
			}
		}
	}
	checkCursor(t, ds, q, seed, got, mo)
	checkJoinStrategies(t, ds, q, seed, false, mo)
}

// checkJoinStrategies re-evaluates q with the planner's join choice
// forced to each strategy in turn — index nested loop, sequential hash
// join, and morsel-parallel hash join — and asserts the solution
// multiset still matches the oracle (or, for ASK, the oracle's
// boolean). The cost model may only change how a join runs, never what
// it returns — this pins that for every generated query, including the
// OPTIONAL/UNION/GRAPH shapes whose probe rows can leave pattern
// variables unbound, and drives every randomized case through the
// parallel build/probe/merge machinery regardless of size.
func checkJoinStrategies(t *testing.T, ds *rdf.Dataset, q *Query, seed int64, askWant bool, oracle map[string]int) {
	t.Helper()
	strategies := []struct {
		name string
		join int32
		par  int32
	}{
		{"nested", joinForceNested, parForceOff},
		{"hash", joinForceHash, parForceOff},
		{"hash-parallel", joinForceHash, parForceOn},
	}
	for _, st := range strategies {
		name := st.name
		withJoinMode(t, st.join, func() {
			withParMode(t, st.par, func() {
				res, err := Eval(ds, q)
				if err != nil {
					t.Fatalf("seed %d: %s-join Eval err = %v (auto succeeded)", seed, name, err)
				}
				if q.Form == FormAsk {
					if res.Bool != askWant {
						t.Fatalf("seed %d: %s-join ASK=%v oracle=%v\nquery: %s", seed, name, res.Bool, askWant, q)
					}
					return
				}
				m := multiset(res.Vars, res.Solutions())
				if len(m) != len(oracle) {
					t.Fatalf("seed %d: %s-join %d distinct rows vs oracle %d\nquery: %s\ndata:\n%sdiff:\n%s",
						seed, name, len(m), len(oracle), q, datasetDump(ds), diffMultisets(m, oracle))
				}
				for k, n := range m {
					if oracle[k] != n {
						t.Fatalf("seed %d: %s-join multiset mismatch\nquery: %s\ndata:\n%sdiff:\n%s",
							seed, name, q, datasetDump(ds), diffMultisets(m, oracle))
					}
				}
			})
		})
	}
}

// checkCursor re-evaluates q through the streaming API and pins it
// against the already-verified materialized result: a full drain via
// Solutions must reproduce the oracle multiset, and — when ORDER BY is
// absent, so the canonical order is total — a partial drain (read k
// rows, stop) must equal the prefix of the full read.
func checkCursor(t *testing.T, ds *rdf.Dataset, q *Query, seed int64, full *Result, oracle map[string]int) {
	t.Helper()
	ctx := context.Background()

	cur, err := EvalCursor(ds, q)
	if err != nil {
		t.Fatalf("seed %d: EvalCursor err = %v (Eval succeeded)", seed, err)
	}
	var sols []Binding
	for b := range cur.Solutions(ctx) {
		sols = append(sols, b)
	}
	if cur.Err() != nil {
		t.Fatalf("seed %d: cursor Err = %v", seed, cur.Err())
	}
	if mc := multiset(cur.Vars(), sols); len(mc) != len(oracle) {
		t.Fatalf("seed %d: cursor drain %d distinct rows vs oracle %d\nquery: %s", seed, len(mc), len(oracle), q)
	} else {
		for k, n := range mc {
			if oracle[k] != n {
				t.Fatalf("seed %d: cursor multiset mismatch\nquery: %s\ndiff:\n%s",
					seed, q, diffMultisets(mc, oracle))
			}
		}
	}

	if len(q.OrderBy) > 0 {
		// ORDER BY keys may tie distinct rows, so prefixes are
		// legitimately run-dependent; only the multiset is pinned above.
		return
	}
	k := full.Len() / 2
	if k == 0 {
		return
	}
	pc, err := EvalCursor(ds, q)
	if err != nil {
		t.Fatalf("seed %d: EvalCursor err = %v", seed, err)
	}
	defer pc.Close()
	for i := 0; i < k; i++ {
		if !pc.Next(ctx) {
			t.Fatalf("seed %d: paged cursor exhausted at row %d of %d: %v", seed, i, k, pc.Err())
		}
		row := pc.Row()
		for col := range pc.Vars() {
			ct, cok := row.Term(col)
			ft, fok := full.TermAt(i, col)
			if cok != fok || ct != ft {
				t.Fatalf("seed %d: paged read row %d col %d = (%v,%v), full read = (%v,%v)\nquery: %s",
					seed, i, col, ct, cok, ft, fok, q)
			}
		}
	}
}

// TestSpecRandomizedEquivalence is the oracle harness: specPairs
// generated query/graph pairs, each evaluated by both engines.
func TestSpecRandomizedEquivalence(t *testing.T) {
	for seed := int64(0); seed < specPairs; seed++ {
		r := rand.New(rand.NewSource(seed))
		ds := genDataset(r)
		q := genQuery(r, ds)
		checkEquivalence(t, ds, q, seed)
	}
}

// --- deterministic edge cases the generator should also hit ---

func edgeDataset() *rdf.Dataset {
	ds := rdf.NewDataset()
	def := ds.Default()
	ex := func(s string) rdf.Term { return rdf.IRI("http://ex.org/" + s) }
	def.MustAdd(rdf.T(ex("s0"), ex("p0"), rdf.IntLit(1)))
	def.MustAdd(rdf.T(ex("s1"), ex("p0"), rdf.IntLit(2)))
	def.MustAdd(rdf.T(ex("s1"), ex("p1"), rdf.Lit("x")))
	return ds
}

func TestSpecEdgeCases(t *testing.T) {
	ds := edgeDataset()
	cases := []struct {
		name string
		src  string
		rows int
	}{
		{"empty BGP", `SELECT * WHERE { }`, 1},
		{"unbound var in projection", `PREFIX ex: <http://ex.org/> SELECT ?s ?nope WHERE { ?s ex:p0 ?v }`, 2},
		{"unbound var in ORDER BY", `PREFIX ex: <http://ex.org/> SELECT ?s WHERE { ?s ex:p0 ?v } ORDER BY ?nope ?s`, 2},
		{"OPTIONAL binds no rows", `PREFIX ex: <http://ex.org/> SELECT ?s ?w WHERE { ?s ex:p0 ?v OPTIONAL { ?s ex:p9 ?w } }`, 2},
		{"OPTIONAL binds some rows", `PREFIX ex: <http://ex.org/> SELECT ?s ?w WHERE { ?s ex:p0 ?v OPTIONAL { ?s ex:p1 ?w } }`, 2},
		{"UNION branch variable disjointness", `PREFIX ex: <http://ex.org/> SELECT * WHERE { { ?a ex:p0 ?b } UNION { ?c ex:p1 ?d } }`, 3},
		{"OFFSET beyond result size", `PREFIX ex: <http://ex.org/> SELECT ?s WHERE { ?s ex:p0 ?v } OFFSET 10`, 0},
		{"LIMIT beyond result size", `PREFIX ex: <http://ex.org/> SELECT ?s WHERE { ?s ex:p0 ?v } LIMIT 99`, 2},
		{"LIMIT zero", `PREFIX ex: <http://ex.org/> SELECT ?s WHERE { ?s ex:p0 ?v } LIMIT 0`, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := MustParse(tc.src)
			res, err := Eval(ds, q)
			if err != nil {
				t.Fatal(err)
			}
			if res.Len() != tc.rows {
				t.Fatalf("rows = %d, want %d\n%s", res.Len(), tc.rows, res.Table())
			}
			checkEquivalence(t, ds, q, -1)
		})
	}

	// Unbound projected variables must be absent from decoded bindings
	// and render as empty table cells, not as the zero Term's value.
	res, err := Run(ds, `PREFIX ex: <http://ex.org/> SELECT ?s ?w WHERE { ?s ex:p0 ?v OPTIONAL { ?s ex:p1 ?w } } ORDER BY ?s`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Solutions()[0]["w"]; ok {
		t.Errorf("unbound ?w present in binding: %v", res.Solutions()[0])
	}
	if _, ok := res.Term(0, "w"); ok {
		t.Errorf("Term reported unbound ?w as bound")
	}
	lines := strings.Split(strings.TrimRight(res.Table(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("table lines = %d\n%s", len(lines), res.Table())
	}
	if strings.Contains(lines[1], "<") || !strings.Contains(lines[2], "x") {
		t.Errorf("unexpected table rendering:\n%s", res.Table())
	}
}

// --- property path / aggregation harness ---
//
// The same oracle discipline extended over the PR's new surface: path
// patterns mixed into BGPs, and GROUP BY/aggregate/HAVING tails. Every
// generated query flows through the full checkEquivalence stack —
// materialized Eval vs refEval, cursor drain, paged-prefix reads, and
// all three forced join strategies.

// genPath draws a random path AST over the shared predicate vocabulary;
// depth bounds nesting so closures of sequences and inverted groups all
// appear without blowing up the naive oracle.
func genPath(r *rand.Rand, depth int) *Path {
	if depth <= 0 || r.Intn(10) < 4 {
		return Link(pick(r, specPreds))
	}
	switch r.Intn(6) {
	case 0:
		return &Path{Kind: PathSeq, L: genPath(r, depth-1), R: genPath(r, depth-1)}
	case 1:
		return &Path{Kind: PathAlt, L: genPath(r, depth-1), R: genPath(r, depth-1)}
	case 2:
		return &Path{Kind: PathInv, Sub: genPath(r, depth-1)}
	case 3:
		return &Path{Kind: PathPlus, Sub: genPath(r, depth-1)}
	case 4:
		return &Path{Kind: PathStar, Sub: genPath(r, depth-1)}
	default:
		return &Path{Kind: PathOpt, Sub: genPath(r, depth-1)}
	}
}

// pathPattern anchors path endpoints on a stored triple the way
// triplePattern does; the path itself is random, so anchoring is a bias
// towards populated results, not a guarantee.
func (g *specGen) pathPattern(ts []rdf.Triple) PathPattern {
	p := genPath(g.r, 2)
	if len(ts) == 0 || g.r.Intn(10) >= 8 {
		return PathPattern{S: genNode(g.r, 0), Path: p, O: genNode(g.r, 2)}
	}
	t := pick(g.r, ts)
	return PathPattern{S: g.node(t.S, 7), Path: p, O: g.node(t.O, 6)}
}

// genPathAggQuery generates a query with path patterns, an aggregation
// tail, or both, per the flags.
func genPathAggQuery(r *rand.Rand, ds *rdf.Dataset, withPath, withAgg bool) *Query {
	g := &specGen{r: r, ds: ds, env: map[string]rdf.Term{}}
	ts := g.triplesFor(rdf.Term{})
	q := &Query{Limit: -1, Where: &Group{}}
	nPath := 0
	for i, n := 0, 1+r.Intn(3); i < n; i++ {
		if withPath && (r.Intn(2) == 0 || (i == n-1 && nPath == 0)) {
			q.Where.Patterns = append(q.Where.Patterns, g.pathPattern(ts))
			nPath++
		} else {
			q.Where.Patterns = append(q.Where.Patterns, g.triplePattern(ts))
		}
	}
	if r.Intn(10) < 3 {
		q.Where.Filters = append(q.Where.Filters, genFilter(r, 2))
	}

	if !withAgg {
		if r.Intn(8) == 0 {
			q.Form = FormAsk
			return q
		}
		q.Distinct = r.Intn(10) < 3
		if r.Intn(10) < 3 {
			q.Star = true
		} else {
			seen := map[string]bool{}
			for i, n := 0, 1+r.Intn(3); i < n; i++ {
				if v := pick(r, specVars); !seen[v] {
					seen[v] = true
					q.Variables = append(q.Variables, v)
				}
			}
		}
		switch r.Intn(10) {
		case 0, 1, 2, 3:
			for i, n := 0, 1+r.Intn(2); i < n; i++ {
				q.OrderBy = append(q.OrderBy, OrderKey{Var: pick(r, specVars), Desc: r.Intn(2) == 0})
			}
		case 4, 5:
			if r.Intn(2) == 0 {
				q.Limit = r.Intn(12)
			}
			if r.Intn(2) == 0 {
				q.Offset = r.Intn(8)
			}
		}
		return q
	}

	// Aggregation tail: GROUP BY over 0-2 vars (possibly vars the WHERE
	// never binds: a single all-unbound group), 1-2 aggregates, HAVING
	// over an alias sometimes, projection = group vars + aliases.
	seen := map[string]bool{}
	for i, n := 0, r.Intn(3); i < n; i++ {
		if v := pick(r, specVars); !seen[v] {
			seen[v] = true
			q.GroupBy = append(q.GroupBy, v)
		}
	}
	for i, n := 0, 1+r.Intn(2); i < n; i++ {
		a := Aggregate{Func: AggFunc(r.Intn(4)), As: fmt.Sprintf("n%d", i)}
		if a.Func != AggCount || r.Intn(3) > 0 {
			a.Var = pick(r, specVars) // else COUNT(*)
			a.Distinct = r.Intn(3) == 0
		}
		q.Aggregates = append(q.Aggregates, a)
	}
	q.Variables = append(append([]string{}, q.GroupBy...), aggAliases(q)...)
	if r.Intn(10) < 3 {
		op := pick(r, []string{"=", "!=", "<", "<=", ">", ">="})
		q.Having = append(q.Having, CmpExpr{
			Op: op,
			L:  VarExpr{Name: pick(r, aggAliases(q))},
			R:  ConstExpr{Term: rdf.IntLit(int64(r.Intn(4)))},
		})
	}
	switch r.Intn(10) {
	case 0, 1, 2:
		q.OrderBy = append(q.OrderBy, OrderKey{Var: pick(r, q.Variables), Desc: r.Intn(2) == 0})
	case 3, 4:
		if r.Intn(2) == 0 {
			q.Limit = r.Intn(6)
		}
		if r.Intn(2) == 0 {
			q.Offset = r.Intn(4)
		}
	}
	return q
}

func aggAliases(q *Query) []string {
	out := make([]string, len(q.Aggregates))
	for i, a := range q.Aggregates {
		out[i] = a.As
	}
	return out
}

// TestSpecPathAggregateEquivalence drives specPairs additional seeds
// through the path/aggregate generator, cycling path-only, aggregate-
// only, and combined shapes.
func TestSpecPathAggregateEquivalence(t *testing.T) {
	for seed := int64(0); seed < specPairs; seed++ {
		r := rand.New(rand.NewSource(1_000_000 + seed))
		ds := genDataset(r)
		q := genPathAggQuery(r, ds, seed%3 != 1, seed%3 != 0)
		checkEquivalence(t, ds, q, seed)
	}
}

// --- mutation checks ---
//
// Each test first proves the fixture passes cleanly, then injects one
// seeded operator bug and asserts the oracle harness catches it — the
// harness is itself under test here.

// assertMutationCaught evaluates q with the given mutation active and
// fails unless the engine now diverges from the oracle (an evaluation
// error also counts as caught).
func assertMutationCaught(t *testing.T, ds *rdf.Dataset, q *Query, m int32) {
	t.Helper()
	mutation = m
	defer func() { mutation = mutNone }()
	got, err := Eval(ds, q)
	if err != nil {
		return
	}
	want, werr := refEval(ds, q)
	if werr != nil {
		t.Fatalf("oracle err = %v", werr)
	}
	me, mo := multiset(got.Vars, got.Solutions()), multiset(want.Vars, want.Sols)
	if len(me) == len(mo) {
		same := true
		for k, n := range me {
			if mo[k] != n {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("mutation %d not caught: engine still matches oracle\nquery: %s\nresult:\n%s", m, q, got.Table())
		}
	}
}

func TestSpecMutationPathDupEmit(t *testing.T) {
	// Diamond: two routes from a to d. Dropping the fixpoint's emission
	// dedup yields d twice.
	ds := rdf.NewDataset()
	ex := func(s string) rdf.Term { return rdf.IRI("http://ex.org/" + s) }
	for _, e := range [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}} {
		ds.Default().MustAdd(rdf.T(ex(e[0]), ex("p"), ex(e[1])))
	}
	q := MustParse(`PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ex:a ex:p+ ?x }`)
	checkEquivalence(t, ds, q, -1)
	assertMutationCaught(t, ds, q, mutPathDupEmit)
}

func TestSpecMutationGroupKeyNarrow(t *testing.T) {
	// More than 256 distinct group keys: truncating IDs to their low
	// byte must collide at least two groups (pigeonhole).
	ds := rdf.NewDataset()
	ex := func(s string) rdf.Term { return rdf.IRI("http://ex.org/" + s) }
	for i := 0; i < 300; i++ {
		ds.Default().MustAdd(rdf.T(ex(fmt.Sprintf("s%d", i)), ex("p"), rdf.IntLit(int64(i))))
	}
	q := MustParse(`PREFIX ex: <http://ex.org/> SELECT ?v (COUNT(*) AS ?n) WHERE { ?s ex:p ?v } GROUP BY ?v`)
	checkEquivalence(t, ds, q, -1)
	assertMutationCaught(t, ds, q, mutGroupKeyNarrow)
}

func TestSpecMutationHavingPreAgg(t *testing.T) {
	// HAVING ?n > 1 filters groups; applied before aggregation the alias
	// is unbound on every input row (effective false), so all rows — and
	// with them the qualifying group — vanish.
	ds := rdf.NewDataset()
	ex := func(s string) rdf.Term { return rdf.IRI("http://ex.org/" + s) }
	ds.Default().MustAdd(rdf.T(ex("a"), ex("p"), ex("x")))
	ds.Default().MustAdd(rdf.T(ex("a"), ex("p"), ex("y")))
	ds.Default().MustAdd(rdf.T(ex("b"), ex("p"), ex("z")))
	q := MustParse(`PREFIX ex: <http://ex.org/> SELECT ?s (COUNT(*) AS ?n) WHERE { ?s ex:p ?o } GROUP BY ?s HAVING (?n > 1)`)
	checkEquivalence(t, ds, q, -1)
	assertMutationCaught(t, ds, q, mutHavingPreAgg)
}
