// Package sparql implements the fragment of the SPARQL 1.1 query
// language that MDM generates and evaluates: SELECT and ASK queries with
// PREFIX directives, basic graph patterns, property paths (`^p`, `p/q`,
// `p|q`, `p+`, `p*`, `p?`), FILTER, OPTIONAL, UNION, named GRAPH blocks,
// aggregation (GROUP BY with COUNT/SUM/MIN/MAX and HAVING), DISTINCT,
// ORDER BY, LIMIT and OFFSET.
//
// The original MDM translates graphically drawn "walks" over the global
// graph into SPARQL; this package provides both that target language and
// a general evaluator over rdf.Dataset so analysts (and tests) can
// inspect intermediate artifacts exactly as Figure 8 of the paper shows.
//
// # Cursor-based evaluation
//
// The primary evaluation product is the Cursor (EvalCursor/RunCursor):
// a query compiles to a tree of pull-based operators, and rows are
// produced one Next call at a time. That gives paged reads their cost
// contract — LIMIT/OFFSET and DISTINCT are enforced inside the
// pipeline, so a page over a large dataset costs O(page) work and
// memory, not O(result) — and gives long-running services cancellation:
// Next polls its context once per row (and periodically inside index
// scans), so a canceled context aborts evaluation promptly with the
// error surfaced by Cursor.Err. Eval/EvalContext/Run remain as
// materializing wrappers; Result is simply the view over a fully
// drained cursor.
//
// Cursor lifetimes are unconstrained: no locks or goroutines are held
// between Next calls, so abandoning a cursor without Close is safe. A
// cursor does not snapshot the dataset — each index scan reads live
// graph state, so writes concurrent with a drain may or may not be
// observed; clone the dataset first for point-in-time reads.
//
// # Result ordering
//
// With ORDER BY, rows stream out of a stable sort barrier. Without
// ORDER BY, results follow a canonical order (projected columns,
// compared left to right, unbound first): a total order up to row
// identity, which makes repeated evaluations — and therefore
// LIMIT/OFFSET pages — deterministic. When a LIMIT is present, the
// canonical case is served by a bounded top-k operator that retains
// only offset+limit rows instead of sorting the full result.
//
// # ID-row evaluation model
//
// The evaluator is late-materializing. Each Query is compiled once to a
// fixed variable-slot layout (variable name -> column index, covering
// every variable the query binds, projects, orders by or filters on),
// and every intermediate solution is a fixed-width []rdf.TermID row over
// the dataset-shared dictionary, with rdf.AnyID marking unbound slots
// (which doubles as the wildcard when a slot is substituted into a match
// pattern). Joins, OPTIONAL left joins, UNION, GRAPH blocks, DISTINCT
// and ORDER BY all operate on raw IDs. Operators hand rows downstream
// Volcano-style (valid until the producer's next pull); only the
// barriers copy, into a chunked arena, so extending or retaining a
// solution is a copy instead of a map clone and discarded rows cost no
// allocation.
//
// Terms are decoded from IDs only at the edges (the decode-at-projection
// rule): Cursor.Row, Result.Solutions / Result.Term / Result.Table
// decode on demand from an append-only dictionary snapshot, and FILTER
// expressions read through the Env interface, whose row-backed
// implementation decodes just the variables an expression actually
// looks up.
//
// # Planning and join algorithms
//
// Before execution, a query's WHERE group compiles to an immutable
// plan: triple patterns are ordered greedily by index-derived
// selectivity estimates (runs never permute across OPTIONAL, UNION or
// GRAPH boundaries, whose sub-groups observe outer bindings), concrete
// terms are resolved to dictionary IDs once (a term the dictionary has
// never seen makes its pattern dead — nothing can match), and each
// pattern is assigned one of two join operators by a small cost model:
// an index nested loop that probes the graph per input row, or a hash
// join that batches the pattern's full match set under one lock into an
// ID-keyed table and probes it per row. The estimated build size is
// weighed against the per-row lock-and-walk tax of index probing, so
// small queries keep the nested loop while wide joins
// (BenchmarkSPARQLJoinRows) switch to the hash join.
//
// Compiled plans are cached on the Query and revalidated per
// evaluation against the dataset's identity, structural version
// (rdf.Dataset.Version: the named-graph set) and dictionary length
// (new terms are the only way a dead constant can revive). Triple
// writes that intern no new term leave plans valid: estimates may go
// stale — a performance matter — but matching always runs against live
// indexes. The full decision rules, cost constants and the benchmark
// behind each live in docs/QUERY_PLANNING.md.
//
// # Oracle testing
//
// The pre-ID-row, Binding-map evaluator is retained in oracle_test.go
// as a reference implementation. spec_test.go generates hundreds of
// random query/graph pairs per run (witness-driven, so most queries
// have non-empty answers) and asserts that engine and oracle produce
// identical solution multisets — through both the materializing Eval
// and a cursor drain, under both join strategies (the planner's choice
// forced each way), plus the paged-read invariant (reading k rows and
// stopping equals the prefix of a full read) whenever the canonical
// order applies. Deterministic edge cases (empty BGP, unbound
// projections, OPTIONAL misses, UNION disjointness, paging past the
// end, hash-join build/probe corners) ride in the same harness. Any
// semantic change to evaluation must keep the two implementations in
// agreement — or consciously change both.
package sparql

import (
	"fmt"
	"strings"
)

// tokenKind enumerates lexical classes.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokKeyword
	tokVar      // ?name or $name
	tokIRI      // <...>
	tokPName    // prefix:local or prefix:
	tokString   // "..."
	tokNumber   // 12, 4.5, -2e3
	tokBoolean  // true/false
	tokLBrace   // {
	tokRBrace   // }
	tokLParen   // (
	tokRParen   // )
	tokDot      // .
	tokSemi     // ;
	tokComma    // ,
	tokStar     // *
	tokA        // the keyword 'a'
	tokOp       // = != < <= > >= && || !
	tokLangTag  // @en
	tokDatatype // ^^
	tokSlash    // / (path sequence)
	tokCaret    // ^ (path inverse; ^^ stays tokDatatype)
	tokPipe     // | (path alternative; || stays tokOp)
	tokPlus     // + (path one-or-more; +digit stays tokNumber)
	tokQuestion // ? (path zero-or-one; ?name stays tokVar)
)

func (k tokenKind) String() string {
	names := map[tokenKind]string{
		tokEOF: "EOF", tokKeyword: "keyword", tokVar: "variable", tokIRI: "IRI",
		tokPName: "prefixed name", tokString: "string", tokNumber: "number",
		tokBoolean: "boolean", tokLBrace: "{", tokRBrace: "}", tokLParen: "(",
		tokRParen: ")", tokDot: ".", tokSemi: ";", tokComma: ",", tokStar: "*",
		tokA: "a", tokOp: "operator", tokLangTag: "language tag", tokDatatype: "^^",
		tokSlash: "/", tokCaret: "^", tokPipe: "|", tokPlus: "+", tokQuestion: "?",
	}
	if n, ok := names[k]; ok {
		return n
	}
	return fmt.Sprintf("token(%d)", int(k))
}

type token struct {
	kind      tokenKind
	text      string
	line, col int
}

// keywords recognized case-insensitively (canonical uppercase forms).
var keywords = map[string]bool{
	"SELECT": true, "ASK": true, "WHERE": true, "PREFIX": true, "FILTER": true,
	"OPTIONAL": true, "UNION": true, "GRAPH": true, "DISTINCT": true,
	"ORDER": true, "BY": true, "ASC": true, "DESC": true, "LIMIT": true,
	"OFFSET": true, "BOUND": true, "REGEX": true, "STR": true, "BASE": true,
	"REDUCED": true, "GROUP": true, "HAVING": true, "AS": true,
	"COUNT": true, "SUM": true, "MIN": true, "MAX": true,
}

type lexer struct {
	src       string
	pos       int
	line, col int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("sparql: line %d:%d: %s", l.line, l.col, fmt.Sprintf(format, args...))
}

func (l *lexer) eof() bool { return l.pos >= len(l.src) }

func (l *lexer) peek() byte {
	if l.eof() {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peekAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipWS() {
	for !l.eof() {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '#':
			for !l.eof() && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipWS()
	line, col := l.line, l.col
	mk := func(k tokenKind, text string) token {
		return token{kind: k, text: text, line: line, col: col}
	}
	if l.eof() {
		return mk(tokEOF, ""), nil
	}
	c := l.peek()
	switch {
	case c == '{':
		l.advance()
		return mk(tokLBrace, "{"), nil
	case c == '}':
		l.advance()
		return mk(tokRBrace, "}"), nil
	case c == '(':
		l.advance()
		return mk(tokLParen, "("), nil
	case c == ')':
		l.advance()
		return mk(tokRParen, ")"), nil
	case c == '.':
		// distinguish '.' terminator from decimal handled in number scan
		l.advance()
		return mk(tokDot, "."), nil
	case c == ';':
		l.advance()
		return mk(tokSemi, ";"), nil
	case c == ',':
		l.advance()
		return mk(tokComma, ","), nil
	case c == '*':
		l.advance()
		return mk(tokStar, "*"), nil
	case c == '?' || c == '$':
		l.advance()
		start := l.pos
		for !l.eof() && isNameByte(l.peek()) {
			l.advance()
		}
		if l.pos == start {
			// A bare '?' is the zero-or-one path modifier; '$' has no
			// such reading and stays an error.
			if c == '?' {
				return mk(tokQuestion, "?"), nil
			}
			return token{}, l.errf("empty variable name")
		}
		return mk(tokVar, l.src[start:l.pos]), nil
	case c == '<':
		// '<' is ambiguous: IRI opener or less-than. IRIs never start
		// with whitespace, '=', a variable marker, a digit or a quote —
		// in those cases lex a comparison operator instead.
		if n := l.peekAt(1); n == ' ' || n == '\t' || n == '\n' || n == '=' ||
			n == '?' || n == '$' || n == '"' || (n >= '0' && n <= '9') || n == '-' || n == '+' {
			l.advance()
			if !l.eof() && l.peek() == '=' {
				l.advance()
				return mk(tokOp, "<="), nil
			}
			return mk(tokOp, "<"), nil
		}
		l.advance()
		start := l.pos
		for !l.eof() && l.peek() != '>' {
			if l.peek() == '\n' {
				return token{}, l.errf("newline in IRI")
			}
			l.advance()
		}
		if l.eof() {
			return token{}, l.errf("unterminated IRI")
		}
		iri := l.src[start:l.pos]
		l.advance() // consume '>'
		return mk(tokIRI, iri), nil
	case c == '"':
		l.advance()
		var sb strings.Builder
		for {
			if l.eof() {
				return token{}, l.errf("unterminated string")
			}
			ch := l.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' {
				if l.eof() {
					return token{}, l.errf("dangling escape")
				}
				e := l.advance()
				switch e {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case 'r':
					sb.WriteByte('\r')
				case '"', '\\':
					sb.WriteByte(e)
				default:
					return token{}, l.errf("unsupported escape \\%c", e)
				}
				continue
			}
			sb.WriteByte(ch)
		}
		return mk(tokString, sb.String()), nil
	case c == '@':
		l.advance()
		start := l.pos
		for !l.eof() && (isAlnumByte(l.peek()) || l.peek() == '-') {
			l.advance()
		}
		if l.pos == start {
			return token{}, l.errf("empty language tag")
		}
		return mk(tokLangTag, l.src[start:l.pos]), nil
	case c == '^':
		if l.peekAt(1) == '^' {
			l.advance()
			l.advance()
			return mk(tokDatatype, "^^"), nil
		}
		l.advance()
		return mk(tokCaret, "^"), nil
	case c == '=':
		l.advance()
		return mk(tokOp, "="), nil
	case c == '!':
		l.advance()
		if !l.eof() && l.peek() == '=' {
			l.advance()
			return mk(tokOp, "!="), nil
		}
		return mk(tokOp, "!"), nil
	case c == '>':
		l.advance()
		if !l.eof() && l.peek() == '=' {
			l.advance()
			return mk(tokOp, ">="), nil
		}
		return mk(tokOp, ">"), nil
	case c == '&':
		if l.peekAt(1) == '&' {
			l.advance()
			l.advance()
			return mk(tokOp, "&&"), nil
		}
		return token{}, l.errf("unexpected '&'")
	case c == '|':
		if l.peekAt(1) == '|' {
			l.advance()
			l.advance()
			return mk(tokOp, "||"), nil
		}
		l.advance()
		return mk(tokPipe, "|"), nil
	case c == '/':
		l.advance()
		return mk(tokSlash, "/"), nil
	case c == '+':
		// '+' directly followed by a digit (or .digit) is a signed
		// number; anywhere else it is the one-or-more path modifier.
		if n := l.peekAt(1); n >= '0' && n <= '9' ||
			(n == '.' && l.peekAt(2) >= '0' && l.peekAt(2) <= '9') {
			return l.lexNumber(mk)
		}
		l.advance()
		return mk(tokPlus, "+"), nil
	case c == '-' || (c >= '0' && c <= '9'):
		return l.lexNumber(mk)
	default:
		return l.lexWord(mk)
	}
}

func (l *lexer) lexNumber(mk func(tokenKind, string) token) (token, error) {
	start := l.pos
	if l.peek() == '+' || l.peek() == '-' {
		l.advance()
	}
	seen := false
	for !l.eof() {
		c := l.peek()
		if c >= '0' && c <= '9' {
			seen = true
			l.advance()
			continue
		}
		if c == '.' && l.peekAt(1) >= '0' && l.peekAt(1) <= '9' {
			l.advance()
			continue
		}
		if (c == 'e' || c == 'E') && seen {
			l.advance()
			if !l.eof() && (l.peek() == '+' || l.peek() == '-') {
				l.advance()
			}
			continue
		}
		break
	}
	if !seen {
		return token{}, l.errf("malformed number")
	}
	return mk(tokNumber, l.src[start:l.pos]), nil
}

func (l *lexer) lexWord(mk func(tokenKind, string) token) (token, error) {
	start := l.pos
	hasColon := false
	for !l.eof() {
		c := l.peek()
		if isNameByte(c) {
			l.advance()
			continue
		}
		if c == ':' {
			hasColon = true
			l.advance()
			continue
		}
		break
	}
	word := l.src[start:l.pos]
	if word == "" {
		return token{}, l.errf("unexpected character %q", string(l.peek()))
	}
	// PrefixedName local parts may end in '.' only when followed by a name
	// char; a trailing '.' is the triple terminator.
	for strings.HasSuffix(word, ".") {
		word = word[:len(word)-1]
		l.pos--
		l.col--
	}
	if hasColon {
		return mk(tokPName, word), nil
	}
	switch word {
	case "a":
		return mk(tokA, "a"), nil
	case "true", "false":
		return mk(tokBoolean, word), nil
	}
	up := strings.ToUpper(word)
	if keywords[up] {
		return mk(tokKeyword, up), nil
	}
	return token{}, l.errf("unexpected word %q", word)
}

func isNameByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '_' || c == '-' || c == '.' || c >= 0x80
}

func isAlnumByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}
