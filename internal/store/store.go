// Package store is a small embedded JSON document store standing in for
// the MongoDB instance that the original MDM uses for system metadata
// (paper §2.5). It provides named collections of JSON documents with
// auto-assigned IDs, query-by-example matching, and atomic-rename
// persistence to disk.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Doc is one stored document. The store assigns the "_id" field.
type Doc map[string]any

// ID returns the document's id, 0 when unsaved.
func (d Doc) ID() int64 {
	switch v := d["_id"].(type) {
	case int64:
		return v
	case float64: // after JSON round trip
		return int64(v)
	}
	return 0
}

// Store is a set of named collections. It is safe for concurrent use.
// A Store with an empty dir is purely in-memory.
type Store struct {
	mu   sync.RWMutex
	dir  string
	cols map[string]*collection
}

type collection struct {
	NextID int64         `json:"next_id"`
	Docs   map[int64]Doc `json:"docs"`
}

// Open loads (or creates) a store rooted at dir; empty dir means
// in-memory only.
func Open(dir string) (*Store, error) {
	s := &Store{dir: dir, cols: map[string]*collection{}}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: read dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		name := e.Name()[:len(e.Name())-len(".json")]
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("store: read collection %s: %w", name, err)
		}
		var col struct {
			NextID int64 `json:"next_id"`
			Docs   []Doc `json:"docs"`
		}
		if err := json.Unmarshal(data, &col); err != nil {
			return nil, fmt.Errorf("store: corrupt collection %s: %w", name, err)
		}
		c := &collection{NextID: col.NextID, Docs: map[int64]Doc{}}
		for _, d := range col.Docs {
			c.Docs[d.ID()] = d
		}
		s.cols[name] = c
	}
	return s, nil
}

func (s *Store) col(name string) *collection {
	c, ok := s.cols[name]
	if !ok {
		c = &collection{NextID: 1, Docs: map[int64]Doc{}}
		s.cols[name] = c
	}
	return c
}

// Insert adds a document to a collection and returns its assigned id.
func (s *Store) Insert(colName string, d Doc) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.col(colName)
	id := c.NextID
	c.NextID++
	nd := Doc{}
	for k, v := range d {
		nd[k] = v
	}
	nd["_id"] = id
	c.Docs[id] = nd
	return id, s.persistLocked(colName)
}

// Get fetches a document by id.
func (s *Store) Get(colName string, id int64) (Doc, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.cols[colName]
	if !ok {
		return nil, false
	}
	d, ok := c.Docs[id]
	return d, ok
}

// Find returns documents matching the example (all example fields equal,
// with numeric coercion), sorted by id. A nil example matches all.
func (s *Store) Find(colName string, example Doc) []Doc {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.cols[colName]
	if !ok {
		return nil
	}
	var out []Doc
	for _, d := range c.Docs {
		if matches(d, example) {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// FindOne returns the lowest-id document matching the example. It is a
// single-pass minimum scan: unlike Find it does not materialize and sort
// the full match set.
func (s *Store) FindOne(colName string, example Doc) (Doc, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.cols[colName]
	if !ok {
		return nil, false
	}
	var best Doc
	for _, d := range c.Docs {
		if matches(d, example) && (best == nil || d.ID() < best.ID()) {
			best = d
		}
	}
	return best, best != nil
}

func matches(d, example Doc) bool {
	for k, want := range example {
		got, ok := d[k]
		if !ok || !looseEqual(got, want) {
			return false
		}
	}
	return true
}

func looseEqual(a, b any) bool {
	if fa, ok := asFloat(a); ok {
		if fb, ok := asFloat(b); ok {
			return fa == fb
		}
		return false
	}
	return a == b
}

func asFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	case float64:
		return x, true
	}
	return 0, false
}

// Update replaces the non-id fields of a document, reporting whether it
// existed.
func (s *Store) Update(colName string, id int64, d Doc) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.cols[colName]
	if !ok {
		return false, nil
	}
	if _, ok := c.Docs[id]; !ok {
		return false, nil
	}
	nd := Doc{}
	for k, v := range d {
		nd[k] = v
	}
	nd["_id"] = id
	c.Docs[id] = nd
	return true, s.persistLocked(colName)
}

// Delete removes a document, reporting whether it existed.
func (s *Store) Delete(colName string, id int64) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.cols[colName]
	if !ok {
		return false, nil
	}
	if _, ok := c.Docs[id]; !ok {
		return false, nil
	}
	delete(c.Docs, id)
	return true, s.persistLocked(colName)
}

// Count returns the number of documents in a collection.
func (s *Store) Count(colName string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.cols[colName]
	if !ok {
		return 0
	}
	return len(c.Docs)
}

// Collections lists collection names, sorted.
func (s *Store) Collections() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.cols))
	for n := range s.cols {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// persistLocked writes one collection to disk (atomic rename). No-op for
// in-memory stores.
func (s *Store) persistLocked(colName string) error {
	if s.dir == "" {
		return nil
	}
	c := s.cols[colName]
	docs := make([]Doc, 0, len(c.Docs))
	for _, d := range c.Docs {
		docs = append(docs, d)
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i].ID() < docs[j].ID() })
	payload := struct {
		NextID int64 `json:"next_id"`
		Docs   []Doc `json:"docs"`
	}{NextID: c.NextID, Docs: docs}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encode %s: %w", colName, err)
	}
	tmp := filepath.Join(s.dir, colName+".json.tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("store: write %s: %w", colName, err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, colName+".json")); err != nil {
		return fmt.Errorf("store: publish %s: %w", colName, err)
	}
	return nil
}

// ErrNotFound is returned by MustGet-style helpers.
var ErrNotFound = errors.New("store: document not found")
