package store

import (
	"os"
	"path/filepath"
	"testing"
)

func TestInsertGetFind(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	id1, err := s.Insert("sources", Doc{"name": "players-api", "format": "json"})
	if err != nil {
		t.Fatal(err)
	}
	id2, _ := s.Insert("sources", Doc{"name": "teams-api", "format": "xml"})
	if id1 == id2 {
		t.Fatal("ids not unique")
	}
	d, ok := s.Get("sources", id1)
	if !ok || d["name"] != "players-api" {
		t.Fatalf("Get = %v, %v", d, ok)
	}
	if _, ok := s.Get("sources", 999); ok {
		t.Error("Get on missing id")
	}
	if _, ok := s.Get("ghost", 1); ok {
		t.Error("Get on missing collection")
	}
	all := s.Find("sources", nil)
	if len(all) != 2 || all[0].ID() != id1 {
		t.Fatalf("Find all = %v", all)
	}
	jsonOnly := s.Find("sources", Doc{"format": "json"})
	if len(jsonOnly) != 1 || jsonOnly[0]["name"] != "players-api" {
		t.Fatalf("Find by example = %v", jsonOnly)
	}
	if got := s.Find("sources", Doc{"format": "csv"}); len(got) != 0 {
		t.Fatalf("Find no match = %v", got)
	}
	one, ok := s.FindOne("sources", Doc{"format": "xml"})
	if !ok || one["name"] != "teams-api" {
		t.Fatalf("FindOne = %v, %v", one, ok)
	}
	if _, ok := s.FindOne("sources", Doc{"format": "csv"}); ok {
		t.Error("FindOne no match should be false")
	}
}

func TestInsertDoesNotAliasCallerDoc(t *testing.T) {
	s, _ := Open("")
	d := Doc{"k": "v"}
	id, _ := s.Insert("c", d)
	d["k"] = "mutated"
	got, _ := s.Get("c", id)
	if got["k"] != "v" {
		t.Error("stored doc aliases caller map")
	}
	if _, ok := d["_id"]; ok {
		t.Error("caller doc mutated with _id")
	}
}

func TestUpdateDelete(t *testing.T) {
	s, _ := Open("")
	id, _ := s.Insert("c", Doc{"v": 1})
	ok, err := s.Update("c", id, Doc{"v": 2, "w": "x"})
	if err != nil || !ok {
		t.Fatalf("Update = %v, %v", ok, err)
	}
	d, _ := s.Get("c", id)
	if d["v"] != 2 || d["w"] != "x" || d.ID() != id {
		t.Fatalf("after update = %v", d)
	}
	if ok, _ := s.Update("c", 999, Doc{}); ok {
		t.Error("Update missing id")
	}
	if ok, _ := s.Update("ghost", 1, Doc{}); ok {
		t.Error("Update missing collection")
	}
	if ok, _ := s.Delete("c", id); !ok {
		t.Error("Delete = false")
	}
	if ok, _ := s.Delete("c", id); ok {
		t.Error("double Delete = true")
	}
	if s.Count("c") != 0 {
		t.Error("Count after delete")
	}
}

func TestNumericCoercionInFind(t *testing.T) {
	s, _ := Open("")
	s.Insert("c", Doc{"n": int64(5)})
	if got := s.Find("c", Doc{"n": 5}); len(got) != 1 {
		t.Error("int vs int64 should match")
	}
	if got := s.Find("c", Doc{"n": 5.0}); len(got) != 1 {
		t.Error("float vs int64 should match")
	}
	if got := s.Find("c", Doc{"n": "5"}); len(got) != 0 {
		t.Error("string should not match number")
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := s.Insert("releases", Doc{"wrapper": "w1", "breaking": true, "n": 3})
	s.Insert("releases", Doc{"wrapper": "w2"})
	s.Insert("other", Doc{"x": "y"})
	s.Delete("releases", id)

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Count("releases") != 1 || s2.Count("other") != 1 {
		t.Fatalf("counts after reopen = %d/%d", s2.Count("releases"), s2.Count("other"))
	}
	d, ok := s2.FindOne("releases", Doc{"wrapper": "w2"})
	if !ok {
		t.Fatal("doc lost")
	}
	// New inserts must not collide with pre-restart ids.
	id3, _ := s2.Insert("releases", Doc{"wrapper": "w3"})
	if id3 <= d.ID() {
		t.Errorf("id reuse after reopen: %d <= %d", id3, d.ID())
	}
	cols := s2.Collections()
	if len(cols) != 2 || cols[0] != "other" {
		t.Errorf("Collections = %v", cols)
	}
}

func TestCorruptCollectionReported(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "bad.json"), []byte("{nope"), 0o644)
	if _, err := Open(dir); err == nil {
		t.Error("corrupt collection accepted")
	}
}

func TestBoolAndNestedValuesSurvive(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	s.Insert("c", Doc{"flags": []any{"a", "b"}, "meta": map[string]any{"k": "v"}, "on": true})
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := s2.FindOne("c", Doc{"on": true})
	if !ok {
		t.Fatal("bool query failed after round trip")
	}
	meta, ok := d["meta"].(map[string]any)
	if !ok || meta["k"] != "v" {
		t.Errorf("nested map = %v", d["meta"])
	}
}
