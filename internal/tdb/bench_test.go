package tdb

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mdm/internal/rdf"
	"mdm/internal/rdf/turtle"
	"mdm/internal/tdb/segment"
)

// benchHistory builds a dataset shaped like an accumulated mdm ontology:
// n add-records across the default graph and a handful of named graphs,
// with mostly-distinct terms so the dictionary grows with the history.
func benchHistory(n int) *rdf.Dataset {
	ds := rdf.NewDataset()
	ds.Prefixes().Bind("ex", "http://ex/")
	p := rdf.IRI("http://ex/p")
	for i := 0; i < n; i++ {
		t := rdf.T(
			rdf.IRI(fmt.Sprintf("http://ex/subject/%d", i)),
			p,
			rdf.Lit(fmt.Sprintf("value-%d", i)),
		)
		if i%4 == 0 {
			ds.Graph(rdf.IRI(fmt.Sprintf("http://ex/g%d", i%8))).MustAdd(t)
		} else {
			ds.Default().MustAdd(t)
		}
	}
	return ds
}

// BenchmarkStoreOpen measures the cold-open cost of a 50k-record history
// in the layouts the two engines leave on disk.
//
//   - segment: sealed segment (binary dict + ID triples, loaded via the
//     bulk-ID fast path) plus empty WAL tail — what the background
//     checkpointer maintains, so this is the segment engine's steady
//     state no matter how the process died.
//   - legacy: a 50k-record JSON WAL and no snapshot. The legacy engine
//     checkpointed only on an explicit Checkpoint/Close, so any restart
//     that didn't come from a clean shutdown replays the entire
//     history.
//   - legacy-checkpointed: the legacy best case (clean shutdown wrote a
//     TriG snapshot), which still re-parses the full text at every
//     open.
//
// The segment/legacy gap is the point of the engine: open cost is
// O(encoded live data + WAL tail), not O(history).
func BenchmarkStoreOpen(b *testing.B) {
	const records = 50_000
	ds := benchHistory(records)

	segDir := b.TempDir()
	if _, err := segment.WriteFile(filepath.Join(segDir, segment.SegmentName(1)), segment.DatasetOps(ds)); err != nil {
		b.Fatal(err)
	}
	man := &segment.Manifest{Version: 1, Segments: []string{segment.SegmentName(1)}, NextSeq: 2}
	if err := man.Write(segDir); err != nil {
		b.Fatal(err)
	}

	walDir := b.TempDir()
	wal, err := json.Marshal(walRecord{Op: "prefix", Prefix: "ex", NS: "http://ex/"})
	if err != nil {
		b.Fatal(err)
	}
	wal = append(wal, '\n')
	for _, q := range ds.Quads() {
		line, err := json.Marshal(walRecord{Op: "add", Quad: encQuad(q)})
		if err != nil {
			b.Fatal(err)
		}
		wal = append(append(wal, line...), '\n')
	}
	if err := os.WriteFile(filepath.Join(walDir, walFile), wal, 0o644); err != nil {
		b.Fatal(err)
	}

	snapDir := b.TempDir()
	if err := os.WriteFile(filepath.Join(snapDir, snapshotFile), []byte(turtle.WriteDataset(ds)), 0o644); err != nil {
		b.Fatal(err)
	}

	for _, bc := range []struct {
		name, dir string
	}{
		{"segment", segDir},
		{"legacy", walDir},
		{"legacy-checkpointed", snapDir},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, err := Open(bc.dir)
				if err != nil {
					b.Fatal(err)
				}
				if s.Dataset().Len() != records {
					b.Fatalf("Len = %d", s.Dataset().Len())
				}
				s.Close()
			}
		})
	}
}

// deadTermDataset returns a dataset whose dictionary holds terms for
// total triples but where only livePct percent are still present — the
// rest were removed, leaving dead dictionary entries behind.
func deadTermDataset(total, livePct int) *rdf.Dataset {
	ds := benchHistory(total)
	keep := total * livePct / 100
	i := 0
	for _, q := range ds.Quads() {
		if i >= keep {
			g, _ := ds.Lookup(q.Graph)
			g.Remove(q.Triple)
		}
		i++
	}
	return ds
}

// BenchmarkDictCompaction measures the dictionary-GC rewrite
// (Dataset.CompactedClone, the core of Store.Compact) at two survival
// rates: a mostly-live dataset (90% live: compaction is near-pure copy)
// and a mostly-dead one (10% live: compaction drops 90% of the dict).
func BenchmarkDictCompaction(b *testing.B) {
	const total = 10_000
	for _, livePct := range []int{10, 90} {
		b.Run(fmt.Sprintf("live%d", livePct), func(b *testing.B) {
			ds := deadTermDataset(total, livePct)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := ds.CompactedClone(); got.Len() != ds.Len() {
					b.Fatalf("clone Len = %d, want %d", got.Len(), ds.Len())
				}
			}
		})
	}
}

// TestCompactShrinksDictBlock is the deterministic acceptance check
// behind BenchmarkDictCompaction: with 90% of the history removed, a
// full compaction must shrink the sealed dictionary block by at least
// half (in practice ~90%).
func TestCompactShrinksDictBlock(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	defer s.Close()
	const total = 2000
	for i := 0; i < total; i++ {
		if err := s.AddTriple(rdf.T(
			rdf.IRI(fmt.Sprintf("http://ex/s%d", i)),
			rdf.IRI("http://ex/p"),
			rdf.Lit(fmt.Sprintf("value-%d", i)),
		)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	man, _ := segment.LoadManifest(dir)
	before, err := segment.ReadStats(filepath.Join(dir, man.Segments[0]))
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < total*9/10; i++ {
		ok, err := s.RemoveQuad(rdf.Q(
			rdf.IRI(fmt.Sprintf("http://ex/s%d", i)),
			rdf.IRI("http://ex/p"),
			rdf.Lit(fmt.Sprintf("value-%d", i)),
			rdf.Term{},
		))
		if err != nil || !ok {
			t.Fatalf("remove %d = %v, %v", i, ok, err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	man, _ = segment.LoadManifest(dir)
	after, err := segment.ReadStats(filepath.Join(dir, man.Segments[0]))
	if err != nil {
		t.Fatal(err)
	}
	if after.DictBytes > before.DictBytes/2 {
		t.Fatalf("dict block %d -> %d bytes: shrank less than 50%%", before.DictBytes, after.DictBytes)
	}
	if got := s.Dataset().Len(); got != total/10 {
		t.Fatalf("Len after compaction = %d, want %d", got, total/10)
	}
}
