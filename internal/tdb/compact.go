package tdb

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"mdm/internal/rdf"
	"mdm/internal/tdb/segment"
)

var expMaintErrors = expvar.NewInt("mdm.tdb.maintenance_errors")

// maxDeltaSegments is the segment count at which background maintenance
// folds the delta chain into one full segment.
const maxDeltaSegments = 16

// Checkpoint seals the current WAL tail into a new delta segment and
// truncates the WAL: an O(tail) durability point, unlike Compact's
// O(dataset) rewrite. A legacy (snapshot.trig) store is migrated with a
// full Compact instead. A crash between publishing the manifest and
// truncating the WAL replays the sealed ops on top of the segment at the
// next open; every op is idempotent against its own effect, so the
// recovered dataset is unchanged.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpointLocked()
}

func (s *Store) checkpointLocked() error {
	if s.closed {
		return errors.New("tdb: store is closed")
	}
	if s.legacy {
		return s.compactLocked()
	}
	if err := s.walBuf.Flush(); err != nil {
		return fmt.Errorf("tdb: flush wal: %w", err)
	}
	if s.walRecords == 0 {
		return nil
	}
	defer timeObs(obsCheckpointDur)()
	ops, err := s.readWALOps()
	if err != nil {
		return err
	}
	man := s.man
	if man == nil {
		man = &segment.Manifest{NextSeq: 1}
	}
	name := segment.SegmentName(man.NextSeq)
	if _, err := segment.WriteFile(filepath.Join(s.dir, name), ops); err != nil {
		return fmt.Errorf("tdb: seal delta segment: %w", err)
	}
	next := man.Clone()
	next.Segments = append(next.Segments, name)
	next.NextSeq++
	if err := next.Write(s.dir); err != nil {
		// The orphaned segment file is swept at the next open.
		return fmt.Errorf("tdb: %w", err)
	}
	s.man = next
	if err := s.truncateWALLocked(); err != nil {
		return err
	}
	s.lastSealed = fingerprint(s.cur.ds)
	expCheckpoints.Add(1)
	s.observeSegments()
	return nil
}

// Compact rewrites the live dataset into a single full segment against a
// fresh dictionary (dropping dead terms and superseded delta segments),
// publishes a one-segment manifest, truncates the WAL and installs the
// compacted dataset as a new epoch. Readers holding a PinSnapshot keep
// their pre-compaction view; everyone else sees the new epoch on their
// next Dataset call. Legacy snapshot.trig stores are migrated to the
// segment format here (the snapshot file is removed once the manifest is
// durable).
//
// When a swap hook is registered (SetSwapHook), the epoch swap — and the
// segment IO feeding it — runs inside the hook's quiescence window, so
// writers that bypass the Store see an atomic dataset hand-over.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	if s.closed {
		return errors.New("tdb: store is closed")
	}
	defer timeObs(obsCompactDur)()
	var cerr error
	swap := func(old *rdf.Dataset) *rdf.Dataset {
		compacted := old.CompactedClone()
		if err := s.sealFullLocked(compacted); err != nil {
			cerr = err
			return nil // seal failed: stay on the old dataset
		}
		s.swapEpochLocked(compacted)
		return compacted
	}
	if s.swapHook != nil {
		s.swapHook(swap)
	} else {
		swap(s.cur.ds)
	}
	return cerr
}

// sealFullLocked writes ds as a full segment, publishes the manifest and
// resets the WAL. Caller holds s.mu.
func (s *Store) sealFullLocked(ds *rdf.Dataset) error {
	seq := uint64(1)
	if s.man != nil {
		seq = s.man.NextSeq
	}
	name := segment.SegmentName(seq)
	if _, err := segment.WriteFile(filepath.Join(s.dir, name), segment.DatasetOps(ds)); err != nil {
		return fmt.Errorf("tdb: seal full segment: %w", err)
	}
	next := &segment.Manifest{Segments: []string{name}, NextSeq: seq + 1}
	if err := next.Write(s.dir); err != nil {
		return fmt.Errorf("tdb: %w", err)
	}
	// The manifest is the recovery point: everything below is cleanup
	// that a crash can at worst leave for the next open to redo.
	s.man = next
	s.legacy = false
	_ = os.Remove(filepath.Join(s.dir, snapshotFile))
	if err := s.truncateWALLocked(); err != nil {
		return err
	}
	next.Sweep(s.dir)
	s.lastSealed = fingerprint(ds)
	s.lastFullDict = ds.Dict().Len()
	expCompactions.Add(1)
	s.observeSegments()
	return nil
}

// truncateWALLocked empties the WAL after its contents became durable in
// a segment. Caller holds s.mu.
func (s *Store) truncateWALLocked() error {
	if err := s.walBuf.Flush(); err != nil {
		return fmt.Errorf("tdb: flush wal: %w", err)
	}
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("tdb: truncate wal: %w", err)
	}
	if _, err := s.wal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("tdb: rewind wal: %w", err)
	}
	if s.opts.Sync != SyncNone {
		_ = s.wal.Sync()
	}
	s.walBuf.Reset(s.wal)
	s.walRecords = 0
	s.walDirty = false
	return nil
}

// readWALOps re-reads the WAL tail as segment ops for sealing. Unlike
// replayWAL this tolerates nothing: the tail was written by this
// process, so any undecodable record is a bug or concurrent tampering.
func (s *Store) readWALOps() ([]segment.Op, error) {
	f, err := os.Open(filepath.Join(s.dir, walFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("tdb: open wal for checkpoint: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	var ops []segment.Op
	for {
		line, rerr := r.ReadBytes('\n')
		if rec := bytes.TrimSpace(line); len(rec) > 0 {
			var w walRecord
			if err := json.Unmarshal(rec, &w); err != nil {
				return nil, fmt.Errorf("tdb: checkpoint: undecodable wal record: %w", err)
			}
			if op, ok := walOp(w); ok {
				ops = append(ops, op)
			}
		}
		if rerr == io.EOF {
			return ops, nil
		}
		if rerr != nil {
			return nil, fmt.Errorf("tdb: read wal: %w", rerr)
		}
	}
}

func walOp(w walRecord) (segment.Op, bool) {
	switch w.Op {
	case "add":
		if w.Quad != nil {
			return segment.Op{Kind: segment.OpAdd, Quad: w.Quad.quad()}, true
		}
	case "remove":
		if w.Quad != nil {
			return segment.Op{Kind: segment.OpRemove, Quad: w.Quad.quad()}, true
		}
	case "drop":
		if w.Graph != nil {
			return segment.Op{Kind: segment.OpDrop, Quad: rdf.Quad{Graph: decTerm(*w.Graph)}}, true
		}
	case "prefix":
		return segment.Op{Kind: segment.OpPrefix, Prefix: w.Prefix, NS: w.NS}, true
	}
	return segment.Op{}, false
}

// AutoCompact runs a full compaction if the WAL has reached threshold
// records, reporting whether it ran.
func (s *Store) AutoCompact(threshold int) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.walRecords < threshold {
		return false, nil
	}
	return true, s.compactLocked()
}

// StartAutoCompact starts the background maintenance goroutine: every
// interval it seals the WAL tail into a delta segment once it holds
// walThreshold records, and escalates to a full compaction when the
// dictionary has doubled since the last one, the delta chain has grown
// past maxDeltaSegments, or the dataset changed without WAL traffic
// (writes that bypassed the Store, e.g. the mdm facade mutating through
// the ontology — only a full rewrite makes those durable). No-op if
// maintenance is already running or the store is closed; Close stops it.
func (s *Store) StartAutoCompact(interval time.Duration, walThreshold int) {
	s.mu.Lock()
	if s.closed || s.bgStop != nil {
		s.mu.Unlock()
		return
	}
	if interval <= 0 {
		interval = time.Minute
	}
	if walThreshold <= 0 {
		walThreshold = s.opts.CompactWALThreshold
	}
	s.bgStop, s.bgDone = make(chan struct{}), make(chan struct{})
	stop, done := s.bgStop, s.bgDone
	s.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
			}
			s.maintain(walThreshold)
		}
	}()
}

// maintain is one background maintenance pass.
func (s *Store) maintain(walThreshold int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	fp := fingerprint(s.cur.ds)
	segs := 0
	if s.man != nil {
		segs = len(s.man.Segments)
	}
	changed := fp != s.lastSealed
	needFull := (s.legacy && (changed || s.walRecords > 0)) || // migrate legacy stores
		(fp.dic >= 1024 && fp.dic >= 2*s.lastFullDict) || // dictionary doubled: GC dead terms
		segs >= maxDeltaSegments || // fold the delta chain
		(changed && s.walRecords == 0) // facade writes bypassed the WAL

	var err error
	switch {
	case needFull:
		err = s.compactLocked()
	case s.walRecords >= walThreshold:
		err = s.checkpointLocked()
	}
	if err != nil {
		expMaintErrors.Add(1)
	}
}
