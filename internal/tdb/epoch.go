package tdb

import (
	"sync"

	"mdm/internal/rdf"
)

// epoch is one immutable-after-retirement generation of the store's
// dataset. The current epoch receives writes; a compaction retires it
// and installs a fresh one. Retired epochs stay reachable only while
// readers hold pins on them.
type epoch struct {
	seq  uint64
	ds   *rdf.Dataset
	pins int
}

// Snapshot is a pinned epoch: a handle on the dataset as of PinSnapshot
// time that the compactor will not swap out from under the holder.
// Release it when done (Release is idempotent); an unreleased Snapshot
// keeps the whole retired dataset live in memory.
//
// Pinning isolates the reader from COMPACTION only: writes applied to
// the pinned epoch while it is still current remain visible, matching
// the store's documented non-snapshot read semantics. Once a compaction
// retires the epoch it is frozen, so a cursor pinned before a
// compaction drains exactly its pre-compaction view.
type Snapshot struct {
	s    *Store
	e    *epoch
	once sync.Once
}

// PinSnapshot pins the current epoch and returns its handle.
func (s *Store) PinSnapshot() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cur.pins++
	return &Snapshot{s: s, e: s.cur}
}

// Dataset returns the pinned dataset.
func (p *Snapshot) Dataset() *rdf.Dataset { return p.e.ds }

// Epoch returns the pinned epoch's sequence number (monotonic per
// store; bumped by each compaction swap).
func (p *Snapshot) Epoch() uint64 { return p.e.seq }

// Release drops the pin. When the last pin on a retired epoch is
// released, the epoch (and its dataset) becomes collectable.
func (p *Snapshot) Release() {
	p.once.Do(func() {
		p.s.mu.Lock()
		defer p.s.mu.Unlock()
		p.e.pins--
		if p.e != p.s.cur && p.e.pins == 0 {
			delete(p.s.retired, p.e.seq)
			expPinnedEpochs.Add(-1)
		}
	})
}

// Epoch returns the current epoch's sequence number.
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epochSeq
}

// RetiredEpochs reports how many compaction-retired epochs are still
// kept alive by outstanding pins (also exported as the
// mdm.tdb.retired_pinned_epochs expvar gauge, process-wide).
func (s *Store) RetiredEpochs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.retired)
}

// swapEpochLocked installs ds as the new current epoch. The previous
// epoch is retired; it is retained only if readers still pin it.
// Caller holds s.mu.
func (s *Store) swapEpochLocked(ds *rdf.Dataset) {
	old := s.cur
	s.epochSeq++
	s.cur = &epoch{seq: s.epochSeq, ds: ds}
	if old.pins > 0 {
		s.retired[old.seq] = old
		expPinnedEpochs.Add(1)
	}
}

// SetSwapHook registers a quiescence window for compaction's epoch
// swap. When set, Compact runs its dataset swap as hook(swap): the hook
// must call swap(old) exactly once while it has externally blocked all
// writers that mutate the dataset WITHOUT going through the Store (the
// mdm facade writes through bdi.Ontology), and must re-point those
// writers at the returned dataset before unblocking them. swap returns
// nil when compaction failed; the hook must then leave its callers on
// the old dataset.
//
// Set the hook before any concurrent use of the store (and before
// StartAutoCompact); it cannot be changed afterwards.
func (s *Store) SetSwapHook(hook func(swap func(old *rdf.Dataset) *rdf.Dataset)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.swapHook = hook
}
