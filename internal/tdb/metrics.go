package tdb

import (
	"time"

	"mdm/internal/obs"
)

// Storage-engine metrics. Counters that already exist as mdm.tdb.*
// expvars are mirrored via read-time shims (both registries publish the
// same value); the durations and gauges below are new obs-native
// series. All are process-wide, cumulative across stores, matching the
// expvar convention this package already uses.
var (
	obsWALFsyncs = obs.Default.NewCounter("mdm_tdb_wal_fsyncs_total",
		"WAL fsync calls (SyncAlways appends plus SyncBatch flushes).")
	obsCheckpointDur = obs.Default.NewHistogram("mdm_tdb_checkpoint_duration_seconds",
		"Checkpoint (WAL tail sealed into a delta segment) durations.", obs.DefBuckets)
	obsCompactDur = obs.Default.NewHistogram("mdm_tdb_compact_duration_seconds",
		"Compaction (full rewrite against a fresh dictionary) durations.", obs.DefBuckets)
	// obsSegments tracks the most recently opened/maintained store's
	// live segment count (last-writer-wins across stores; mdmd runs
	// exactly one).
	obsSegments = obs.Default.NewGauge("mdm_tdb_segments",
		"Live segments in the most recently maintained store's manifest.")
)

func init() {
	shim := func(name, help string, v interface{ Value() int64 }) {
		obs.Default.CounterFunc(name, help, func() float64 { return float64(v.Value()) })
	}
	shim("mdm_tdb_wal_torn_bytes_total",
		"WAL bytes trimmed as torn tails at open (mirror of mdm.tdb.wal_torn_bytes).", expTornBytes)
	shim("mdm_tdb_checkpoints_total",
		"Checkpoints completed (mirror of mdm.tdb.checkpoints).", expCheckpoints)
	shim("mdm_tdb_compactions_total",
		"Compactions completed (mirror of mdm.tdb.compactions).", expCompactions)
	// retired_pinned_epochs is a gauge in expvar clothing (pins release),
	// so it mirrors as a gauge here.
	obs.Default.GaugeFunc("mdm_tdb_retired_pinned_epochs",
		"Retired epochs kept alive by pins (mirror of mdm.tdb.retired_pinned_epochs).",
		func() float64 { return float64(expPinnedEpochs.Value()) })
	shim("mdm_tdb_maintenance_errors_total",
		"Background maintenance failures (mirror of mdm.tdb.maintenance_errors).", expMaintErrors)
}

// observeSegments publishes the manifest's live segment count; nil
// (legacy store, no manifest yet) counts as zero.
func (s *Store) observeSegments() {
	n := 0
	if s.man != nil {
		n = len(s.man.Segments)
	}
	obsSegments.Set(float64(n))
}

// timeObs returns a closure recording elapsed time into h when called.
func timeObs(h *obs.Histogram) func() {
	t0 := time.Now()
	return func() { h.Observe(time.Since(t0).Seconds()) }
}
