package segment

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strings"
)

// ManifestFile is the name of the manifest inside a store directory.
const ManifestFile = "MANIFEST"

// Manifest describes a segment store directory: the live segments in
// apply order. Everything not reachable from the manifest — older
// segment files, temp files from an interrupted seal — is garbage and
// is swept on open.
type Manifest struct {
	// Version is the format version (currently 1).
	Version int `json:"version"`
	// Segments lists live segment file names (relative to the store
	// directory) in apply order.
	Segments []string `json:"segments"`
	// NextSeq numbers the next segment to be sealed; sequence numbers
	// only grow, so a crash between sealing and publishing can never
	// recycle a file name that a stale manifest still references.
	NextSeq uint64 `json:"next_seq"`
}

// SegmentName returns the canonical file name for sequence number seq.
func SegmentName(seq uint64) string {
	return fmt.Sprintf("seg-%06d.seg", seq)
}

// LoadManifest reads the manifest of dir. A missing manifest returns
// (nil, nil): the directory is a legacy or empty store.
func LoadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("segment: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("segment: corrupt manifest: %w", err)
	}
	if m.Version != 1 {
		return nil, fmt.Errorf("segment: unsupported manifest version %d", m.Version)
	}
	return &m, nil
}

// Write publishes the manifest atomically: temp file, fsync, rename,
// directory fsync (best effort). After Write returns the manifest is
// the store's recovery point.
func (m *Manifest) Write(dir string) error {
	m.Version = 1
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("segment: encode manifest: %w", err)
	}
	tmp := filepath.Join(dir, ManifestFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("segment: create manifest temp: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("segment: write manifest temp: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("segment: sync manifest temp: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("segment: close manifest temp: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, ManifestFile)); err != nil {
		return fmt.Errorf("segment: publish manifest: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// Sweep removes segment files and temp files in dir that the manifest
// does not reference — leftovers of a crash between sealing a segment
// (or writing a temp manifest) and publishing. Best effort; errors are
// ignored because garbage is harmless.
func (m *Manifest) Sweep(dir string) {
	live := make(map[string]bool, len(m.Segments))
	for _, s := range m.Segments {
		live[s] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		stale := (strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".seg") && !live[name]) ||
			strings.HasSuffix(name, ".tmp")
		if stale {
			_ = os.Remove(filepath.Join(dir, name))
		}
	}
}

// Clone returns a deep copy (Segments slice not shared).
func (m *Manifest) Clone() *Manifest {
	out := *m
	out.Segments = slices.Clone(m.Segments)
	return &out
}
