// Package segment implements the immutable on-disk segment format of
// the tdb storage engine.
//
// A segment is a sealed, checksummed, dictionary-encoded slice of store
// history. Checkpoints seal the WAL tail into a DELTA segment (the ops
// since the last seal); compaction rewrites the whole live dataset into
// one FULL segment whose dictionary block contains only live terms. A
// store directory is described by a MANIFEST file listing the live
// segments in apply order plus the WAL truncation point; the manifest is
// published with a temp-file + rename, so a crash mid-seal leaves the
// previous manifest (and the WAL it points at) intact.
//
// # File layout
//
// Little-endian, varint-heavy (encoding/binary Uvarint):
//
//	magic    "MDMSEG1\n"
//	dict     uvarint termCount, then per term:
//	           kind byte, then value / datatype / lang as
//	           (uvarint length + raw bytes)
//	blocks   uvarint blockCount, then per block:
//	           op byte (add | remove | drop | prefix)
//	           graph ref: uvarint (0 = default graph, else localID+1)
//	           uvarint recordCount, then per record:
//	             add/remove: s, p, o as uvarint local IDs
//	             drop:       nothing (the block's graph ref is the victim)
//	             prefix:     prefix + namespace as (uvarint len + bytes)
//	footer   crc32(IEEE) of everything above (uint32), body length
//	         (uint64), dict block length in bytes (uint64), record count
//	         (uint64), tail magic "MDMSEGF!"
//
// Records inside a segment preserve store-op order: consecutive ops with
// the same kind and graph are run-length grouped into one block, which
// degenerates to "one dict block + one ID-triple block per graph" for
// full segments (each graph written as a single add run) while staying
// order-faithful for delta segments with interleaved removes and drops.
//
// Terms are interned once in the segment-local dictionary; triples are
// three uvarints. Loading therefore interns each distinct term exactly
// once into the dataset dictionary and inserts triples through the
// ID-level fast path (rdf.Graph.AddIDs) — no Turtle re-parsing, no
// per-position Term hashing.
package segment

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"mdm/internal/rdf"
)

// Op kinds, mirroring the tdb WAL ops.
const (
	OpAdd byte = iota
	OpRemove
	OpDrop
	OpPrefix
)

var (
	magic     = []byte("MDMSEG1\n")
	tailMagic = []byte("MDMSEGF!")
)

// footerSize is crc32 + bodyLen + dictBytes + records + tail magic.
const footerSize = 4 + 8 + 8 + 8 + 8

// Op is one store mutation in segment form.
type Op struct {
	Kind       byte
	Quad       rdf.Quad // add / remove; Graph doubles as the drop victim
	Prefix, NS string   // prefix
}

// Stats summarizes a written or loaded segment.
type Stats struct {
	Records   int   // mutation records (adds + removes + drops + prefixes)
	DictTerms int   // entries in the segment-local dictionary
	DictBytes int64 // encoded size of the dict block
	FileBytes int64 // total file size
}

// writer accumulates the encoded body of one segment.
type writer struct {
	buf   []byte
	ids   map[rdf.Term]uint64
	terms []rdf.Term
}

func (w *writer) uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

func (w *writer) str(s string) {
	w.buf = binary.AppendUvarint(w.buf, uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// intern assigns the segment-local ID of t.
func (w *writer) intern(t rdf.Term) uint64 {
	if id, ok := w.ids[t]; ok {
		return id
	}
	id := uint64(len(w.terms))
	w.ids[t] = id
	w.terms = append(w.terms, t)
	return id
}

// graphRef encodes a graph name: 0 for the default graph, localID+1
// otherwise.
func (w *writer) graphRef(name rdf.Term) uint64 {
	if name.IsZero() {
		return 0
	}
	return w.intern(name) + 1
}

// WriteFile seals ops into a new segment at path. The file is fsynced
// before WriteFile returns, so a caller that then publishes it in a
// manifest (atomic rename) gets the standard crash contract: either the
// manifest names a fully durable segment or it does not name it at all.
func WriteFile(path string, ops []Op) (Stats, error) {
	// Two passes share one local dictionary: the first interns terms and
	// encodes blocks, the second (cheap) assembles dict + blocks + footer.
	bw := &writer{ids: make(map[rdf.Term]uint64)}

	// Run-length group ops into blocks. A block boundary is any change of
	// (kind, graph); drop and prefix blocks carry one record each for
	// simplicity (they are rare).
	type block struct {
		op    byte
		graph uint64
		start int // offset of the block's records in bw.buf
		n     uint64
	}
	var blocks []block
	flushHeaderless := func(op byte, graph uint64) *block {
		blocks = append(blocks, block{op: op, graph: graph, start: len(bw.buf)})
		return &blocks[len(blocks)-1]
	}
	var cur *block
	records := 0
	for _, op := range ops {
		records++
		switch op.Kind {
		case OpAdd, OpRemove:
			gref := bw.graphRef(op.Quad.Graph)
			if cur == nil || cur.op != op.Kind || cur.graph != gref {
				cur = flushHeaderless(op.Kind, gref)
			}
			bw.uvarint(bw.intern(op.Quad.S))
			bw.uvarint(bw.intern(op.Quad.P))
			bw.uvarint(bw.intern(op.Quad.O))
			cur.n++
		case OpDrop:
			b := flushHeaderless(OpDrop, bw.graphRef(op.Quad.Graph))
			b.n = 1
			cur = nil
		case OpPrefix:
			b := flushHeaderless(OpPrefix, 0)
			bw.str(op.Prefix)
			bw.str(op.NS)
			b.n = 1
			cur = nil
		default:
			return Stats{}, fmt.Errorf("segment: unknown op kind %d", op.Kind)
		}
	}
	body := bw.buf

	// Assemble: magic, dict, blocks, footer.
	out := make([]byte, 0, len(body)+len(body)/2+64)
	out = append(out, magic...)
	dictStart := len(out)
	out = binary.AppendUvarint(out, uint64(len(bw.terms)))
	for _, t := range bw.terms {
		out = append(out, byte(t.Kind))
		out = binary.AppendUvarint(out, uint64(len(t.Value)))
		out = append(out, t.Value...)
		out = binary.AppendUvarint(out, uint64(len(t.Datatype)))
		out = append(out, t.Datatype...)
		out = binary.AppendUvarint(out, uint64(len(t.Lang)))
		out = append(out, t.Lang...)
	}
	dictBytes := int64(len(out) - dictStart)
	out = binary.AppendUvarint(out, uint64(len(blocks)))
	for i, b := range blocks {
		out = append(out, b.op)
		out = binary.AppendUvarint(out, b.graph)
		out = binary.AppendUvarint(out, b.n)
		end := len(body)
		if i+1 < len(blocks) {
			end = blocks[i+1].start
		}
		out = append(out, body[b.start:end]...)
	}

	bodyLen := uint64(len(out))
	var foot [footerSize]byte
	binary.LittleEndian.PutUint32(foot[0:], crc32.ChecksumIEEE(out))
	binary.LittleEndian.PutUint64(foot[4:], bodyLen)
	binary.LittleEndian.PutUint64(foot[12:], uint64(dictBytes))
	binary.LittleEndian.PutUint64(foot[20:], uint64(records))
	copy(foot[28:], tailMagic)
	out = append(out, foot[:]...)

	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return Stats{}, fmt.Errorf("segment: create %s: %w", path, err)
	}
	if _, err := f.Write(out); err != nil {
		f.Close()
		return Stats{}, fmt.Errorf("segment: write %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return Stats{}, fmt.Errorf("segment: sync %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return Stats{}, fmt.Errorf("segment: close %s: %w", path, err)
	}
	return Stats{
		Records:   records,
		DictTerms: len(bw.terms),
		DictBytes: dictBytes,
		FileBytes: int64(len(out)),
	}, nil
}

// DatasetOps flattens a dataset into the op list of a full segment:
// every prefix binding, then every quad (default graph first, named
// graphs in name order) as adds. Sealing a compacted dataset this way
// yields a segment whose dict block holds exactly the live terms.
func DatasetOps(ds *rdf.Dataset) []Op {
	quads := ds.Quads()
	pairs := ds.Prefixes().Pairs()
	ops := make([]Op, 0, len(quads)+len(pairs))
	for _, p := range pairs {
		ops = append(ops, Op{Kind: OpPrefix, Prefix: p[0], NS: p[1]})
	}
	for _, q := range quads {
		ops = append(ops, Op{Kind: OpAdd, Quad: q})
	}
	return ops
}

// reader decodes one segment body. base, when set, is a string copy of
// buf[baseOff:baseOff+len(base)]; substr slices it so decoded strings
// share one backing array instead of allocating per string.
type reader struct {
	buf     []byte
	pos     int
	base    string
	baseOff int
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("segment: truncated varint at offset %d", r.pos)
	}
	r.pos += n
	return v, nil
}

func (r *reader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if uint64(len(r.buf)-r.pos) < n {
		return "", fmt.Errorf("segment: string of %d bytes overruns body at offset %d", n, r.pos)
	}
	s := string(r.buf[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

// substr is str without the per-string copy: the result is a slice of
// r.base. limit bounds the read to the region base covers.
func (r *reader) substr(limit int) (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if uint64(limit-r.pos) < n {
		return "", fmt.Errorf("segment: string of %d bytes overruns block at offset %d", n, r.pos)
	}
	start := r.pos - r.baseOff
	r.pos += int(n)
	return r.base[start : start+int(n)], nil
}

// LoadFile verifies and applies a segment into ds, returning its stats.
// Ops are applied in stored order; adds go through the ID-level fast
// path of the dataset's shared dictionary.
func LoadFile(path string, ds *rdf.Dataset) (Stats, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Stats{}, fmt.Errorf("segment: read %s: %w", path, err)
	}
	st, err := apply(data, ds)
	if err != nil {
		return Stats{}, fmt.Errorf("segment: %s: %w", path, err)
	}
	st.FileBytes = int64(len(data))
	return st, nil
}

// ReadStats verifies a segment's footer and checksum without applying
// it — the cheap integrity + size probe used by compaction accounting.
func ReadStats(path string) (Stats, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Stats{}, fmt.Errorf("segment: read %s: %w", path, err)
	}
	st, _, err := checkFooter(data)
	if err != nil {
		return Stats{}, fmt.Errorf("segment: %s: %w", path, err)
	}
	st.FileBytes = int64(len(data))
	return st, nil
}

// checkFooter validates framing + checksum and returns footer stats and
// the body slice.
func checkFooter(data []byte) (Stats, []byte, error) {
	if len(data) < len(magic)+footerSize {
		return Stats{}, nil, fmt.Errorf("file of %d bytes is too short for a segment", len(data))
	}
	if string(data[:len(magic)]) != string(magic) {
		return Stats{}, nil, fmt.Errorf("bad magic %q", data[:len(magic)])
	}
	foot := data[len(data)-footerSize:]
	if string(foot[28:]) != string(tailMagic) {
		return Stats{}, nil, fmt.Errorf("bad tail magic (truncated segment?)")
	}
	bodyLen := binary.LittleEndian.Uint64(foot[4:])
	if bodyLen != uint64(len(data)-footerSize) {
		return Stats{}, nil, fmt.Errorf("body length %d does not match file size %d", bodyLen, len(data)-footerSize)
	}
	body := data[:bodyLen]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(foot[0:]); got != want {
		return Stats{}, nil, fmt.Errorf("checksum mismatch: file says %08x, body hashes to %08x", want, got)
	}
	return Stats{
		DictBytes: int64(binary.LittleEndian.Uint64(foot[12:])),
		Records:   int(binary.LittleEndian.Uint64(foot[20:])),
	}, body, nil
}

func apply(data []byte, ds *rdf.Dataset) (Stats, error) {
	st, body, err := checkFooter(data)
	if err != nil {
		return Stats{}, err
	}
	// The dict block (whose extent the footer records) is converted to a
	// single string up front; every term's value/datatype/lang is a
	// substring sharing that one backing array. Decoding a 100k-term dict
	// then costs one allocation instead of three per term.
	dictEnd := len(magic) + int(st.DictBytes)
	if st.DictBytes < 0 || dictEnd > len(body) {
		return Stats{}, fmt.Errorf("dict block of %d bytes overruns body", st.DictBytes)
	}
	dictStr := string(body[len(magic):dictEnd])
	r := &reader{buf: body, pos: len(magic), base: dictStr, baseOff: len(magic)}

	// Dict block: intern every segment-local term into the dataset dict
	// once, building the local -> dataset ID remap.
	termCount, err := r.uvarint()
	if err != nil {
		return Stats{}, err
	}
	if termCount > uint64(len(body)) {
		return Stats{}, fmt.Errorf("implausible term count %d", termCount)
	}
	st.DictTerms = int(termCount)
	remap := make([]rdf.TermID, termCount)
	terms := make([]rdf.Term, termCount)
	for i := range remap {
		if r.pos >= dictEnd {
			return Stats{}, fmt.Errorf("dict entry %d overruns dict block", i)
		}
		kind := rdf.TermKind(r.buf[r.pos])
		r.pos++
		val, err := r.substr(dictEnd)
		if err != nil {
			return Stats{}, err
		}
		dt, err := r.substr(dictEnd)
		if err != nil {
			return Stats{}, err
		}
		lang, err := r.substr(dictEnd)
		if err != nil {
			return Stats{}, err
		}
		terms[i] = rdf.Term{Kind: kind, Value: val, Datatype: dt, Lang: lang}
	}
	if r.pos != dictEnd {
		return Stats{}, fmt.Errorf("dict block size %d does not match its %d terms", st.DictBytes, termCount)
	}
	ds.Dict().InternBatch(terms, remap)

	graphTerm := func(ref uint64) (rdf.Term, error) {
		if ref == 0 {
			return rdf.Term{}, nil
		}
		if ref-1 >= termCount {
			return rdf.Term{}, fmt.Errorf("graph ref %d out of dict range %d", ref, termCount)
		}
		return terms[ref-1], nil
	}

	blockCount, err := r.uvarint()
	if err != nil {
		return Stats{}, err
	}
	var batch [][3]rdf.TermID // reused add-run buffer across blocks
	for b := uint64(0); b < blockCount; b++ {
		if r.pos >= len(r.buf) {
			return Stats{}, fmt.Errorf("block %d overruns body", b)
		}
		op := r.buf[r.pos]
		r.pos++
		gref, err := r.uvarint()
		if err != nil {
			return Stats{}, err
		}
		n, err := r.uvarint()
		if err != nil {
			return Stats{}, err
		}
		switch op {
		case OpAdd, OpRemove:
			gname, err := graphTerm(gref)
			if err != nil {
				return Stats{}, err
			}
			var g *rdf.Graph
			if op == OpAdd {
				g = ds.Graph(gname)
			} else if lg, ok := ds.Lookup(gname); ok {
				g = lg
			}
			batch = batch[:0]
			for i := uint64(0); i < n; i++ {
				s, err := r.uvarint()
				if err != nil {
					return Stats{}, err
				}
				p, err := r.uvarint()
				if err != nil {
					return Stats{}, err
				}
				o, err := r.uvarint()
				if err != nil {
					return Stats{}, err
				}
				if s >= termCount || p >= termCount || o >= termCount {
					return Stats{}, fmt.Errorf("triple ID out of dict range %d", termCount)
				}
				if op == OpAdd {
					batch = append(batch, [3]rdf.TermID{remap[s], remap[p], remap[o]})
				} else if g != nil {
					// Remove from a graph that never existed is a no-op
					// and must not create the graph.
					g.Remove(rdf.T(terms[s], terms[p], terms[o]))
				}
			}
			if op == OpAdd && len(batch) > 0 {
				g.BulkAddIDs(batch)
			}
		case OpDrop:
			gname, err := graphTerm(gref)
			if err != nil {
				return Stats{}, err
			}
			ds.DropGraph(gname)
		case OpPrefix:
			for i := uint64(0); i < n; i++ {
				prefix, err := r.str()
				if err != nil {
					return Stats{}, err
				}
				ns, err := r.str()
				if err != nil {
					return Stats{}, err
				}
				ds.Prefixes().Bind(prefix, ns)
			}
		default:
			return Stats{}, fmt.Errorf("unknown op %d in block %d", op, b)
		}
	}
	return st, nil
}
