package segment

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mdm/internal/rdf"
	"mdm/internal/rdf/turtle"
)

func iri(n string) rdf.Term { return rdf.IRI("http://ex/" + n) }

func TestWriteLoadRoundTripMixedOps(t *testing.T) {
	path := filepath.Join(t.TempDir(), SegmentName(1))
	ops := []Op{
		{Kind: OpPrefix, Prefix: "ex", NS: "http://ex/"},
		{Kind: OpAdd, Quad: rdf.Q(iri("s1"), iri("p"), rdf.Lit("a"), rdf.Term{})},
		{Kind: OpAdd, Quad: rdf.Q(iri("s2"), iri("p"), rdf.LangLit("hei", "no"), rdf.Term{})},
		{Kind: OpAdd, Quad: rdf.Q(iri("s1"), iri("p"), rdf.IntLit(7), iri("g1"))},
		{Kind: OpAdd, Quad: rdf.Q(iri("s9"), iri("p"), rdf.Lit("doomed"), iri("g2"))},
		{Kind: OpRemove, Quad: rdf.Q(iri("s1"), iri("p"), rdf.Lit("a"), rdf.Term{})},
		{Kind: OpDrop, Quad: rdf.Quad{Graph: iri("g2")}},
	}
	ws, err := WriteFile(path, ops)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Records != len(ops) {
		t.Fatalf("written records = %d, want %d", ws.Records, len(ops))
	}
	if ws.DictTerms == 0 || ws.DictBytes == 0 {
		t.Fatalf("dict stats empty: %+v", ws)
	}

	ds := rdf.NewDataset()
	ls, err := LoadFile(path, ds)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Records != ws.Records || ls.DictTerms != ws.DictTerms {
		t.Fatalf("load stats %+v != write stats %+v", ls, ws)
	}
	// Ops applied in order: s1-a added then removed, g2 added then dropped.
	if ds.Default().Len() != 1 {
		t.Fatalf("default graph Len = %d, want 1 (remove applied)", ds.Default().Len())
	}
	if _, ok := ds.Lookup(iri("g2")); ok {
		t.Fatal("dropped graph g2 survived")
	}
	g1, ok := ds.Lookup(iri("g1"))
	if !ok || g1.Len() != 1 {
		t.Fatalf("g1 = %v, %v", g1, ok)
	}
	if exp, ok := ds.Prefixes().Expand("ex:x"); !ok || exp != "http://ex/x" {
		t.Fatal("prefix op not applied")
	}
	if !ds.Default().Has(rdf.T(iri("s2"), iri("p"), rdf.LangLit("hei", "no"))) {
		t.Fatal("lang literal lost fidelity through the segment")
	}
}

func TestDatasetOpsFullSegmentRoundTrip(t *testing.T) {
	src := rdf.NewDataset()
	src.Prefixes().Bind("ex", "http://ex/")
	src.Default().MustAdd(rdf.T(iri("s"), iri("p"), rdf.TypedLit("3.14", "http://www.w3.org/2001/XMLSchema#decimal")))
	src.Graph(iri("g")).MustAdd(rdf.T(iri("s"), iri("q"), rdf.Lit("named")))

	path := filepath.Join(t.TempDir(), SegmentName(1))
	if _, err := WriteFile(path, DatasetOps(src)); err != nil {
		t.Fatal(err)
	}
	dst := rdf.NewDataset()
	if _, err := LoadFile(path, dst); err != nil {
		t.Fatal(err)
	}
	if got, want := turtle.WriteDataset(dst), turtle.WriteDataset(src); got != want {
		t.Fatalf("round trip differs:\n%s\nwant:\n%s", got, want)
	}
}

func TestLoadDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, SegmentName(1))
	ops := DatasetOps(func() *rdf.Dataset {
		ds := rdf.NewDataset()
		for i := 0; i < 50; i++ {
			ds.Default().MustAdd(rdf.T(iri("s"), iri("p"), rdf.IntLit(int64(i))))
		}
		return ds
	}())
	if _, err := WriteFile(path, ops); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	flip := func(name string, mutate func([]byte) []byte) {
		t.Run(name, func(t *testing.T) {
			bad := filepath.Join(dir, "bad-"+name+".seg")
			if err := os.WriteFile(bad, mutate(append([]byte(nil), data...)), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := LoadFile(bad, rdf.NewDataset()); err == nil {
				t.Fatal("corrupt segment loaded cleanly")
			}
		})
	}
	flip("body-byte", func(b []byte) []byte { b[len(b)/2] ^= 0xff; return b })
	flip("truncated", func(b []byte) []byte { return b[:len(b)-10] })
	flip("bad-magic", func(b []byte) []byte { b[0] = 'X'; return b })
	flip("empty", func(b []byte) []byte { return nil })
}

func TestReadStatsFooterOnly(t *testing.T) {
	path := filepath.Join(t.TempDir(), SegmentName(7))
	ds := rdf.NewDataset()
	ds.Default().MustAdd(rdf.T(iri("s"), iri("p"), rdf.Lit("v")))
	ws, err := WriteFile(path, DatasetOps(ds))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := ReadStats(path)
	if err != nil {
		t.Fatal(err)
	}
	// The footer carries record count and sizes but not the term count.
	if rs.Records != ws.Records || rs.DictBytes != ws.DictBytes || rs.FileBytes != ws.FileBytes {
		t.Fatalf("ReadStats %+v != WriteFile stats %+v", rs, ws)
	}
}

func TestManifestWriteLoadSweep(t *testing.T) {
	dir := t.TempDir()
	if m, err := LoadManifest(dir); err != nil || m != nil {
		t.Fatalf("LoadManifest on empty dir = %v, %v", m, err)
	}
	m := &Manifest{Version: 1, Segments: []string{SegmentName(1), SegmentName(3)}, NextSeq: 4}
	if err := m.Write(dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.NextSeq != 4 || len(got.Segments) != 2 || got.Segments[1] != SegmentName(3) {
		t.Fatalf("loaded manifest = %+v", got)
	}

	// Sweep removes unreferenced segments and temp files, keeps the rest.
	for _, name := range []string{SegmentName(1), SegmentName(2), SegmentName(3), "stray.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got.Sweep(dir)
	for name, want := range map[string]bool{
		SegmentName(1): true, SegmentName(2): false, SegmentName(3): true, "stray.tmp": false,
	} {
		_, err := os.Stat(filepath.Join(dir, name))
		if exists := err == nil; exists != want {
			t.Errorf("%s exists = %v, want %v", name, exists, want)
		}
	}

	// Corrupt manifest is an error, not a silent fresh store.
	if err := os.WriteFile(filepath.Join(dir, ManifestFile), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(dir); err == nil {
		t.Fatal("corrupt manifest accepted")
	}

	c := m.Clone()
	c.Segments = append(c.Segments, SegmentName(9))
	if len(m.Segments) != 2 {
		t.Fatal("Clone shares the segment slice")
	}
	if !strings.HasPrefix(SegmentName(12), "seg-000012") {
		t.Fatalf("SegmentName(12) = %s", SegmentName(12))
	}
}
