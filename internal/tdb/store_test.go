package tdb

import (
	"expvar"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mdm/internal/rdf"
	"mdm/internal/rdf/turtle"
	"mdm/internal/sparql"
	"mdm/internal/tdb/segment"
)

func ex(n string) rdf.Term { return rdf.IRI("http://ex/" + n) }

// trig renders the live dataset deterministically for oracle comparisons.
func trig(s *Store) string { return turtle.WriteDataset(s.Dataset()) }

func TestCheckpointSealsDelta(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	for i := 0; i < 10; i++ {
		if err := s.AddTriple(rdf.T(ex(fmt.Sprintf("s%d", i)), ex("p"), rdf.IntLit(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if s.WALRecords() != 0 {
		t.Fatalf("WALRecords after checkpoint = %d", s.WALRecords())
	}
	// A second checkpoint with no new writes must not add a segment.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	man, err := segment.LoadManifest(dir)
	if err != nil || man == nil {
		t.Fatalf("LoadManifest = %v, %v", man, err)
	}
	if len(man.Segments) != 1 {
		t.Fatalf("segments after idle checkpoint = %v", man.Segments)
	}

	// More writes, another checkpoint: delta segments accumulate.
	if err := s.AddQuad(rdf.Q(ex("s0"), ex("p"), rdf.Lit("named"), ex("g"))); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	man, _ = segment.LoadManifest(dir)
	if len(man.Segments) != 2 {
		t.Fatalf("segments after second checkpoint = %v", man.Segments)
	}
	want := trig(s)
	s.Close()

	s2 := openT(t, dir)
	defer s2.Close()
	if got := trig(s2); got != want {
		t.Fatalf("reopen from delta segments differs:\n%s\nwant:\n%s", got, want)
	}
}

func TestWALMidFileCorruptionNamesOffset(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	for i := 0; i < 3; i++ {
		if err := s.AddTriple(rdf.T(ex(fmt.Sprintf("s%d", i)), ex("p"), rdf.IntLit(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	path := filepath.Join(dir, walFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	// Clobber the middle record, keeping a valid record after it: that is
	// mid-file corruption, not a torn tail, and must fail the open.
	lines[1] = strings.Repeat("x", len(lines[1])-1) + "\n"
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir)
	if err == nil || !strings.Contains(err.Error(), "byte offset") {
		t.Fatalf("Open on mid-file corruption = %v, want byte-offset error", err)
	}
	wantOff := fmt.Sprintf("byte offset %d", len(lines[0]))
	if !strings.Contains(err.Error(), wantOff) {
		t.Fatalf("error %q does not name offset %q", err, wantOff)
	}
}

func TestTornWALTailTrimmedAndCounted(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	if err := s.AddTriple(rdf.T(ex("s"), ex("p"), rdf.Lit("v"))); err != nil {
		t.Fatal(err)
	}
	s.Close()

	path := filepath.Join(dir, walFile)
	goodSize := int64(0)
	if fi, err := os.Stat(path); err == nil {
		goodSize = fi.Size()
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	const torn = `{"op":"add","quad":[{"k":0,"v":"to`
	f.WriteString(torn)
	f.Close()

	before := expvar.Get("mdm.tdb.wal_torn_bytes").(*expvar.Int).Value()
	s2 := openT(t, dir)
	if got := s2.Dataset().Default().Len(); got != 1 {
		t.Fatalf("Len after torn tail = %d, want 1", got)
	}
	if delta := expvar.Get("mdm.tdb.wal_torn_bytes").(*expvar.Int).Value() - before; delta != int64(len(torn)) {
		t.Fatalf("wal_torn_bytes delta = %d, want %d", delta, len(torn))
	}
	// The torn bytes are trimmed so the next append starts a clean line.
	if fi, err := os.Stat(path); err != nil || fi.Size() != goodSize {
		t.Fatalf("wal size after trim = %v (err %v), want %d", fi.Size(), err, goodSize)
	}
	if err := s2.AddTriple(rdf.T(ex("s2"), ex("p"), rdf.Lit("w"))); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := openT(t, dir)
	defer s3.Close()
	if got := s3.Dataset().Default().Len(); got != 2 {
		t.Fatalf("Len after append-past-torn-tail = %d, want 2", got)
	}
}

func TestCrashMidCompactionSwept(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	for i := 0; i < 5; i++ {
		if err := s.AddTriple(rdf.T(ex(fmt.Sprintf("s%d", i)), ex("p"), rdf.IntLit(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	want := trig(s)
	s.Close()

	// Simulate a crash between sealing a segment and publishing the
	// manifest: a stray sealed segment plus a temp manifest. Neither is
	// referenced by MANIFEST, so both must be swept and ignored.
	stray := filepath.Join(dir, segment.SegmentName(99))
	if err := os.WriteFile(stray, []byte("half-written segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	tmpMan := filepath.Join(dir, segment.ManifestFile+".tmp")
	if err := os.WriteFile(tmpMan, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir)
	defer s2.Close()
	if got := trig(s2); got != want {
		t.Fatalf("dataset after simulated crash differs:\n%s\nwant:\n%s", got, want)
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Errorf("unreferenced segment not swept: %v", err)
	}
	if _, err := os.Stat(tmpMan); !os.IsNotExist(err) {
		t.Errorf("temp manifest not swept: %v", err)
	}
}

func TestCheckpointCompactMixReopen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.BindPrefix("ex", "http://ex/")
	for i := 0; i < 8; i++ {
		if err := s.AddTriple(rdf.T(ex(fmt.Sprintf("a%d", i)), ex("p"), rdf.IntLit(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.AddQuad(rdf.Q(ex("a0"), ex("q"), rdf.LangLit("hei", "no"), ex("g1"))); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RemoveQuad(rdf.Q(ex("a1"), ex("p"), rdf.IntLit(1), rdf.Term{})); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.DropGraph(ex("g1")); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTriple(rdf.T(ex("post"), ex("p"), rdf.Lit("tail"))); err != nil {
		t.Fatal(err)
	}
	want := trig(s)
	s.Close()

	man, _ := segment.LoadManifest(dir)
	if man == nil || len(man.Segments) != 1 {
		t.Fatalf("manifest after compact = %+v", man)
	}
	s2 := openT(t, dir)
	defer s2.Close()
	if got := trig(s2); got != want {
		t.Fatalf("reopen after checkpoint/compact mix differs:\n%s\nwant:\n%s", got, want)
	}
}

func TestLegacySnapshotMigratesOnCompact(t *testing.T) {
	dir := t.TempDir()
	// Build a legacy (pre-segment) store layout by hand: a TriG snapshot
	// and a JSON WAL tail, no MANIFEST.
	ds := rdf.NewDataset()
	ds.Prefixes().Bind("ex", "http://ex/")
	ds.Default().MustAdd(rdf.T(ex("s"), ex("p"), rdf.Lit("snap")))
	ds.Graph(ex("g")).MustAdd(rdf.T(ex("s"), ex("p"), rdf.Lit("named")))
	if err := os.WriteFile(filepath.Join(dir, snapshotFile), []byte(turtle.WriteDataset(ds)), 0o644); err != nil {
		t.Fatal(err)
	}
	wal := `{"op":"add","quad":[{"k":0,"v":"http://ex/s"},{"k":0,"v":"http://ex/p"},{"k":1,"v":"tail"}]}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, walFile), []byte(wal), 0o644); err != nil {
		t.Fatal(err)
	}

	s := openT(t, dir)
	if got := s.Dataset().Len(); got != 3 {
		t.Fatalf("legacy store Len = %d, want 3", got)
	}
	want := trig(s)
	// First compaction migrates to the segment format.
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if man, err := segment.LoadManifest(dir); err != nil || man == nil {
		t.Fatalf("no manifest after migrating compact: %v, %v", man, err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotFile)); !os.IsNotExist(err) {
		t.Fatalf("legacy snapshot survived migration: %v", err)
	}
	s2 := openT(t, dir)
	defer s2.Close()
	if got := trig(s2); got != want {
		t.Fatalf("migrated store differs:\n%s\nwant:\n%s", got, want)
	}
}

func TestRemoveMissingGraphDoesNotCreate(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	if err := s.AddTriple(rdf.T(ex("s"), ex("p"), rdf.Lit("v"))); err != nil {
		t.Fatal(err)
	}
	ver := s.Dataset().Version()
	wal := s.WALRecords()
	ok, err := s.RemoveQuad(rdf.Q(ex("s"), ex("p"), rdf.Lit("v"), ex("missing")))
	if err != nil || ok {
		t.Fatalf("RemoveQuad from missing graph = %v, %v", ok, err)
	}
	if got := s.Dataset().Version(); got != ver {
		t.Fatalf("Version bumped %d -> %d by a no-op remove", ver, got)
	}
	if len(s.Dataset().GraphNames()) != 0 {
		t.Fatalf("missing graph materialized: %v", s.Dataset().GraphNames())
	}
	if s.WALRecords() != wal {
		t.Fatal("no-op remove reached the WAL")
	}
	s.Close()

	// Replay path: a remove record naming a graph that never existed
	// (e.g. written by an older binary) must not create it either.
	rec := `{"op":"remove","quad":[{"k":0,"v":"http://ex/s"},{"k":0,"v":"http://ex/p"},{"k":1,"v":"v"},{"k":0,"v":"http://ex/ghost"}]}` + "\n"
	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(rec)
	f.Close()
	s2 := openT(t, dir)
	defer s2.Close()
	if len(s2.Dataset().GraphNames()) != 0 {
		t.Fatalf("replay materialized a graph: %v", s2.Dataset().GraphNames())
	}
}

func TestPinSnapshotIsolatesCompaction(t *testing.T) {
	s := openT(t, t.TempDir())
	defer s.Close()
	for i := 0; i < 3; i++ {
		if err := s.AddTriple(rdf.T(ex(fmt.Sprintf("s%d", i)), ex("p"), rdf.IntLit(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	pin := s.PinSnapshot()
	// Appends within the pinned epoch stay visible (pins freeze the
	// storage epoch, not the dataset).
	if err := s.AddTriple(rdf.T(ex("s3"), ex("p"), rdf.IntLit(3))); err != nil {
		t.Fatal(err)
	}
	if got := pin.Dataset().Len(); got != 4 {
		t.Fatalf("pinned Len before compact = %d, want 4", got)
	}

	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() == pin.Epoch() {
		t.Fatal("compaction did not advance the epoch")
	}
	if s.RetiredEpochs() != 1 {
		t.Fatalf("RetiredEpochs = %d, want 1", s.RetiredEpochs())
	}
	// Post-compaction writes go to the new epoch only.
	if err := s.AddTriple(rdf.T(ex("s4"), ex("p"), rdf.IntLit(4))); err != nil {
		t.Fatal(err)
	}
	if got := pin.Dataset().Len(); got != 4 {
		t.Fatalf("pinned Len after compact = %d, want 4 (frozen)", got)
	}
	if got := s.Dataset().Len(); got != 5 {
		t.Fatalf("live Len = %d, want 5", got)
	}
	res, err := sparql.Run(pin.Dataset(), `SELECT ?s WHERE { ?s <http://ex/p> ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 {
		t.Fatalf("query over pinned snapshot = %d rows, want 4", res.Len())
	}
	pin.Release()
	pin.Release() // idempotent
	if s.RetiredEpochs() != 0 {
		t.Fatalf("RetiredEpochs after release = %d, want 0", s.RetiredEpochs())
	}

	// A pin on the current epoch releases without ever being retired.
	p2 := s.PinSnapshot()
	p2.Release()
	if s.RetiredEpochs() != 0 {
		t.Fatalf("RetiredEpochs after current-epoch release = %d", s.RetiredEpochs())
	}
}

func TestSyncModesDurable(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"always", Options{Sync: SyncAlways}},
		{"batch", Options{Sync: SyncBatch, SyncInterval: time.Millisecond}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := OpenWith(dir, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.AddTriple(rdf.T(ex("s"), ex("p"), rdf.Lit(tc.name))); err != nil {
				t.Fatal(err)
			}
			if tc.opts.Sync == SyncBatch {
				time.Sleep(20 * time.Millisecond) // let the sync loop run
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			s2 := openT(t, dir)
			defer s2.Close()
			if got := s2.Dataset().Default().Len(); got != 1 {
				t.Fatalf("Len after reopen = %d, want 1", got)
			}
		})
	}
}

// TestConcurrentQueriesDuringCompaction is the background-compaction
// variant of TestConcurrentQueriesDuringAppends: readers pin the storage
// epoch per query while writers append and the maintenance loop
// checkpoints and dict-GCs the store. Run with -race (CI does).
func TestConcurrentQueriesDuringCompaction(t *testing.T) {
	s, err := OpenWith(t.TempDir(), Options{
		CompactInterval:     time.Millisecond,
		CompactWALThreshold: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := 0; i < 50; i++ {
		if err := s.AddTriple(rdf.T(ex(fmt.Sprintf("s%d", i)), ex("p"), rdf.IntLit(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}

	const query = `SELECT ?s ?o WHERE { ?s <http://ex/p> ?o }`
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var qerr atomic.Value
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				pin := s.PinSnapshot()
				if _, err := sparql.Run(pin.Dataset(), query); err != nil {
					qerr.Store(err)
					pin.Release()
					return
				}
				pin.Release()
			}
		}()
	}
	for i := 0; i < 300; i++ {
		if err := s.AddTriple(rdf.T(ex(fmt.Sprintf("n%d", i)), ex("p"), rdf.IntLit(int64(i)))); err != nil {
			t.Fatal(err)
		}
		if i%50 == 0 {
			if err := s.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	if err := qerr.Load(); err != nil {
		t.Fatalf("concurrent query failed: %v", err)
	}
	res, err := sparql.Run(s.Dataset(), query)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 350 {
		t.Fatalf("rows = %d, want 350", res.Len())
	}
	if s.RetiredEpochs() != 0 {
		t.Fatalf("RetiredEpochs leaked = %d", s.RetiredEpochs())
	}
}
