// Package tdb provides durable storage for an rdf.Dataset, replacing the
// Jena TDB persistence engine used by the original MDM implementation.
//
// The design is an epoch-based segment store in front of a write-ahead
// log:
//
//   - MANIFEST lists the live, immutable on-disk segments (see the
//     segment subpackage: a dict block of interned terms plus ID-triple
//     blocks per graph, checksummed) in apply order;
//   - wal.jsonl holds one JSON record per mutation since the last seal.
//
// Open loads the manifest's segments (binary decode straight into the
// dataset dictionary and ID indexes — no Turtle parsing) and then
// replays the WAL tail, so startup is O(segments + WAL tail), not
// O(full history re-parse). Checkpoint seals the WAL tail into a new
// delta segment in O(tail); Compact rewrites the live dataset against a
// fresh dictionary into a single full segment, dropping dead dictionary
// terms and tombstoned triples, and swaps the compacted dataset in as a
// new EPOCH — readers that pinned the previous epoch (PinSnapshot) keep
// draining their snapshot untouched. Both publish the manifest with a
// temp-file + rename, so a crash mid-seal leaves the previous manifest
// + WAL recovery point intact.
//
// Legacy stores (a snapshot.trig TriG snapshot instead of a manifest)
// still open; the first Compact migrates them to the segment format.
//
// # Durability
//
// By default WAL appends are flushed to the OS (bufio.Flush) but NOT
// fsynced: a process crash loses at most the record being written, but
// an OS crash or power failure can lose any records the kernel had not
// yet written back. Opt into fsync durability with Options.Sync:
// SyncAlways fsyncs every append; SyncBatch fsyncs at most every
// Options.SyncInterval. A truncated final WAL record (torn write during
// a crash) is tolerated and trimmed at the next Open; an undecodable
// record with further records after it is mid-file corruption and fails
// Open with the byte offset.
package tdb

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"mdm/internal/rdf"
	"mdm/internal/rdf/turtle"
	"mdm/internal/tdb/segment"
)

const (
	// snapshotFile is the legacy (pre-segment) full-snapshot file name.
	snapshotFile = "snapshot.trig"
	walFile      = "wal.jsonl"
)

// Package-wide expvar counters (cumulative across stores in a process),
// served by mdmd at GET /debug/vars.
var (
	expTornBytes    = expvar.NewInt("mdm.tdb.wal_torn_bytes")
	expCheckpoints  = expvar.NewInt("mdm.tdb.checkpoints")
	expCompactions  = expvar.NewInt("mdm.tdb.compactions")
	expPinnedEpochs = expvar.NewInt("mdm.tdb.retired_pinned_epochs")
)

// SyncMode selects WAL fsync behavior; see Options.Sync.
type SyncMode int

const (
	// SyncNone (default) flushes appends to the OS without fsync.
	SyncNone SyncMode = iota
	// SyncAlways fsyncs the WAL after every append.
	SyncAlways
	// SyncBatch marks the WAL dirty on append and fsyncs it from a
	// background goroutine every Options.SyncInterval.
	SyncBatch
)

// Options configures OpenWith. The zero value reproduces Open's
// historical behavior: no fsync, no background maintenance.
type Options struct {
	// Sync selects the WAL durability mode.
	Sync SyncMode
	// SyncInterval is the SyncBatch flush period (default 5ms).
	SyncInterval time.Duration
	// CompactInterval, when > 0, starts the background compactor: every
	// interval the store seals the WAL tail once it reaches
	// CompactWALThreshold records and runs a full compaction when the
	// dictionary or segment list has grown enough (see maintain).
	CompactInterval time.Duration
	// CompactWALThreshold is the WAL record count that triggers a
	// background checkpoint (default 4096).
	CompactWALThreshold int
}

func (o Options) withDefaults() Options {
	if o.SyncInterval <= 0 {
		o.SyncInterval = 5 * time.Millisecond
	}
	if o.CompactWALThreshold <= 0 {
		o.CompactWALThreshold = 4096
	}
	return o
}

// Store is a durable rdf.Dataset. All mutations must go through the
// Store's methods so they hit the WAL; reads can use the Dataset
// directly (or PinSnapshot for compaction-isolated reads). Store is
// safe for concurrent use.
type Store struct {
	mu   sync.Mutex
	dir  string
	opts Options

	// cur is the live epoch; retired holds epochs replaced by a
	// compaction that still have outstanding pins.
	cur      *epoch
	retired  map[uint64]*epoch
	epochSeq uint64

	// man is the segment manifest; nil for a store that has never sealed
	// a segment (fresh, or legacy snapshot.trig not yet migrated).
	man    *segment.Manifest
	legacy bool // snapshot.trig loaded, migrate on first seal

	wal        *os.File
	walBuf     *bufio.Writer
	walRecords int
	walDirty   bool // SyncBatch: append since last fsync
	closed     bool

	// swapHook, when set, runs epoch swaps inside a caller-provided
	// quiescence window (see SetSwapHook).
	swapHook func(swap func(old *rdf.Dataset) *rdf.Dataset)

	// lastSealed fingerprints the dataset at the last durable point, so
	// the background compactor can detect mutations that bypassed the
	// WAL (the mdm facade writes through the ontology); lastFullDict is
	// the dictionary size right after the last full compaction.
	lastSealed   dsFingerprint
	lastFullDict int

	bgStop, bgDone     chan struct{}
	syncStop, syncDone chan struct{}
}

type dsFingerprint struct {
	version  uint64
	len, dic int
}

func fingerprint(ds *rdf.Dataset) dsFingerprint {
	return dsFingerprint{version: ds.Version(), len: ds.Len(), dic: ds.Dict().Len()}
}

// walRecord is one logged mutation.
type walRecord struct {
	Op     string    `json:"op"` // add | remove | drop | prefix
	Quad   *jsonQuad `json:"quad,omitempty"`
	Graph  *jsonTerm `json:"graph,omitempty"`
	Prefix string    `json:"prefix,omitempty"`
	NS     string    `json:"ns,omitempty"`
}

// jsonTerm is the WAL encoding of an rdf.Term.
type jsonTerm struct {
	K  uint8  `json:"k"`
	V  string `json:"v"`
	DT string `json:"dt,omitempty"`
	LG string `json:"lg,omitempty"`
}

// jsonQuad serializes as a compact JSON array of 3 or 4 terms via the
// custom (Un)MarshalJSON methods below.
type jsonQuad struct {
	S, P, O jsonTerm
	G       *jsonTerm
}

func encTerm(t rdf.Term) jsonTerm {
	return jsonTerm{K: uint8(t.Kind), V: t.Value, DT: t.Datatype, LG: t.Lang}
}

func decTerm(j jsonTerm) rdf.Term {
	return rdf.Term{Kind: rdf.TermKind(j.K), Value: j.V, Datatype: j.DT, Lang: j.LG}
}

func encQuad(q rdf.Quad) *jsonQuad {
	jq := &jsonQuad{S: encTerm(q.S), P: encTerm(q.P), O: encTerm(q.O)}
	if !q.Graph.IsZero() {
		g := encTerm(q.Graph)
		jq.G = &g
	}
	return jq
}

func (jq *jsonQuad) quad() rdf.Quad {
	q := rdf.Quad{Triple: rdf.T(decTerm(jq.S), decTerm(jq.P), decTerm(jq.O))}
	if jq.G != nil {
		q.Graph = decTerm(*jq.G)
	}
	return q
}

// MarshalJSON flattens the quad to a compact array-of-terms form.
func (jq *jsonQuad) MarshalJSON() ([]byte, error) {
	arr := []jsonTerm{jq.S, jq.P, jq.O}
	if jq.G != nil {
		arr = append(arr, *jq.G)
	}
	return json.Marshal(arr)
}

// UnmarshalJSON reverses MarshalJSON.
func (jq *jsonQuad) UnmarshalJSON(b []byte) error {
	var arr []jsonTerm
	if err := json.Unmarshal(b, &arr); err != nil {
		return err
	}
	if len(arr) != 3 && len(arr) != 4 {
		return fmt.Errorf("tdb: quad record has %d terms", len(arr))
	}
	jq.S, jq.P, jq.O = arr[0], arr[1], arr[2]
	if len(arr) == 4 {
		g := arr[3]
		jq.G = &g
	}
	return nil
}

// Open loads (or creates) a store rooted at dir with default options.
func Open(dir string) (*Store, error) {
	return OpenWith(dir, Options{})
}

// OpenWith loads (or creates) a store rooted at dir. If
// opts.CompactInterval > 0 the background compactor is started
// immediately; facade-style embedders that need to wire a swap hook
// first should leave it zero and call SetSwapHook + StartAutoCompact.
func OpenWith(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tdb: create dir: %w", err)
	}
	ds := rdf.NewDataset()
	s := &Store{
		dir:      dir,
		opts:     opts,
		retired:  make(map[uint64]*epoch),
		epochSeq: 1,
	}

	man, err := segment.LoadManifest(dir)
	if err != nil {
		return nil, fmt.Errorf("tdb: %w", err)
	}
	if man != nil {
		// Segment store: sweep crash leftovers (sealed-but-unpublished
		// segments, temp manifests, a snapshot.trig whose migration
		// published the manifest but crashed before removing it), then
		// stream-load the live segments.
		man.Sweep(dir)
		_ = os.Remove(filepath.Join(dir, snapshotFile))
		for _, name := range man.Segments {
			if _, err := segment.LoadFile(filepath.Join(dir, name), ds); err != nil {
				return nil, fmt.Errorf("tdb: corrupt segment: %w", err)
			}
		}
		s.man = man
	} else if data, err := os.ReadFile(filepath.Join(dir, snapshotFile)); err == nil {
		// Legacy snapshot+WAL store: full TriG re-parse, migrated to the
		// segment format by the first Compact/Checkpoint.
		loaded, perr := turtle.ParseDataset(string(data))
		if perr != nil {
			return nil, fmt.Errorf("tdb: corrupt snapshot: %w", perr)
		}
		ds = loaded
		s.legacy = true
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("tdb: read snapshot: %w", err)
	}

	s.cur = &epoch{seq: s.epochSeq, ds: ds}
	if err := s.replayWAL(); err != nil {
		return nil, err
	}
	wal, err := os.OpenFile(filepath.Join(dir, walFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("tdb: open wal: %w", err)
	}
	s.wal = wal
	s.walBuf = bufio.NewWriter(wal)
	s.lastSealed = fingerprint(ds)
	s.lastFullDict = ds.Dict().Len()

	if opts.Sync == SyncBatch {
		s.syncStop, s.syncDone = make(chan struct{}), make(chan struct{})
		go s.syncLoop()
	}
	if opts.CompactInterval > 0 {
		s.StartAutoCompact(opts.CompactInterval, opts.CompactWALThreshold)
	}
	s.observeSegments()
	return s, nil
}

// replayWAL applies the WAL tail to the live dataset. A torn FINAL
// record (crash mid-append) is tolerated: the torn bytes are counted on
// expvar and trimmed from the file so later appends cannot bury
// corruption mid-file. An undecodable record with more data after it is
// mid-file corruption and fails the open, naming the byte offset.
func (s *Store) replayWAL() error {
	path := filepath.Join(s.dir, walFile)
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("tdb: open wal for replay: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	// WAL records cluster by graph (MDM mutates one named graph at a
	// time), so cache the last graph to skip a dataset lookup per record.
	var cache graphCache
	var off int64 // offset of the first byte not yet known-good
	for {
		line, rerr := r.ReadBytes('\n')
		rec := bytes.TrimSpace(line)
		if len(rec) > 0 {
			var w walRecord
			if uerr := json.Unmarshal(rec, &w); uerr != nil {
				// Torn tail or mid-file corruption? Anything after this
				// line means the file kept growing past the bad record,
				// which a torn final append cannot produce.
				rest, _ := io.ReadAll(r)
				if len(bytes.TrimSpace(rest)) > 0 {
					return fmt.Errorf("tdb: corrupt wal record at byte offset %d: %w", off, uerr)
				}
				torn := int64(len(line) + len(rest))
				expTornBytes.Add(torn)
				if terr := os.Truncate(path, off); terr != nil {
					return fmt.Errorf("tdb: trim torn wal tail: %w", terr)
				}
				return nil
			}
			s.applyLocked(w, &cache)
			s.walRecords++
		}
		off += int64(len(line))
		if rerr == io.EOF {
			return nil
		}
		if rerr != nil {
			return fmt.Errorf("tdb: read wal: %w", rerr)
		}
	}
}

// graphCache memoizes the most recent Dataset.Graph resolution during
// WAL replay.
type graphCache struct {
	name  rdf.Term
	graph *rdf.Graph
}

func (c *graphCache) get(ds *rdf.Dataset, name rdf.Term) *rdf.Graph {
	if c.graph == nil || c.name != name {
		c.graph = ds.Graph(name)
		c.name = name
	}
	return c.graph
}

func (c *graphCache) invalidate() { c.graph = nil }

func (s *Store) applyLocked(rec walRecord, cache *graphCache) {
	switch rec.Op {
	case "add":
		if rec.Quad != nil {
			q := rec.Quad.quad()
			_, _ = cache.get(s.cur.ds, q.Graph).Add(q.Triple)
		}
	case "remove":
		if rec.Quad != nil {
			q := rec.Quad.quad()
			// Removing from a graph that does not exist must stay a
			// no-op: resolving it through Dataset.Graph would create the
			// graph and bump Dataset.Version for nothing.
			if g, ok := s.cur.ds.Lookup(q.Graph); ok {
				if cache.graph != nil && cache.name != q.Graph {
					cache.invalidate()
				}
				g.Remove(q.Triple)
			}
		}
	case "drop":
		if rec.Graph != nil {
			s.cur.ds.DropGraph(decTerm(*rec.Graph))
			cache.invalidate()
		}
	case "prefix":
		s.cur.ds.Prefixes().Bind(rec.Prefix, rec.NS)
	}
}

func (s *Store) append(rec walRecord) error {
	if s.closed {
		return errors.New("tdb: store is closed")
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("tdb: encode wal record: %w", err)
	}
	if _, err := s.walBuf.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("tdb: append wal: %w", err)
	}
	if err := s.walBuf.Flush(); err != nil {
		return fmt.Errorf("tdb: flush wal: %w", err)
	}
	switch s.opts.Sync {
	case SyncAlways:
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("tdb: fsync wal: %w", err)
		}
		obsWALFsyncs.Inc()
	case SyncBatch:
		s.walDirty = true
	}
	s.walRecords++
	return nil
}

// syncLoop is the SyncBatch flusher: fsync the WAL at most once per
// SyncInterval, and only when an append happened since the last fsync.
func (s *Store) syncLoop() {
	defer close(s.syncDone)
	t := time.NewTicker(s.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-s.syncStop:
			return
		case <-t.C:
		}
		s.mu.Lock()
		if !s.closed && s.walDirty {
			_ = s.wal.Sync()
			s.walDirty = false
			obsWALFsyncs.Inc()
		}
		s.mu.Unlock()
	}
}

// Dataset returns the live dataset (the current epoch). Mutate only
// through Store methods. After a compaction this returns a DIFFERENT
// dataset; long-running readers that must not observe the swap should
// use PinSnapshot.
func (s *Store) Dataset() *rdf.Dataset {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur.ds
}

// AddQuad durably inserts a quad.
func (s *Store) AddQuad(q rdf.Quad) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !q.Triple.Valid() {
		return fmt.Errorf("tdb: invalid quad %s", q)
	}
	added, err := s.cur.ds.AddQuad(q)
	if err != nil {
		return err
	}
	if !added {
		return nil // no-op, nothing to log
	}
	return s.append(walRecord{Op: "add", Quad: encQuad(q)})
}

// AddTriple durably inserts a triple into the default graph.
func (s *Store) AddTriple(t rdf.Triple) error {
	return s.AddQuad(rdf.Quad{Triple: t})
}

// RemoveQuad durably removes a quad, reporting whether it was present.
// Removing from a named graph that does not exist is a no-op: it does
// not create the graph (and so does not bump Dataset.Version or
// invalidate plan caches).
func (s *Store) RemoveQuad(q rdf.Quad) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.cur.ds.Lookup(q.Graph)
	if !ok || !g.Remove(q.Triple) {
		return false, nil
	}
	return true, s.append(walRecord{Op: "remove", Quad: encQuad(q)})
}

// DropGraph durably removes an entire named graph.
func (s *Store) DropGraph(name rdf.Term) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.cur.ds.DropGraph(name) {
		return nil
	}
	g := encTerm(name)
	return s.append(walRecord{Op: "drop", Graph: &g})
}

// BindPrefix durably registers a prefix binding.
func (s *Store) BindPrefix(prefix, ns string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cur.ds.Prefixes().Bind(prefix, ns)
	return s.append(walRecord{Op: "prefix", Prefix: prefix, NS: ns})
}

// WALRecords returns the number of WAL records since the last seal
// (including records replayed at Open).
func (s *Store) WALRecords() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walRecords
}

// Close stops background maintenance, flushes and closes the WAL. The
// store cannot be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	if s.bgStop != nil {
		close(s.bgStop)
		<-s.bgDone
	}
	if s.syncStop != nil {
		close(s.syncStop)
		<-s.syncDone
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.walBuf.Flush(); err != nil {
		s.wal.Close()
		return err
	}
	if s.opts.Sync != SyncNone {
		_ = s.wal.Sync()
	}
	return s.wal.Close()
}
