// Package tdb provides durable storage for an rdf.Dataset, replacing the
// Jena TDB persistence engine used by the original MDM implementation.
//
// The design is a classic snapshot + write-ahead log:
//
//   - snapshot.trig holds a full TriG serialization of the dataset taken
//     at the last checkpoint;
//   - wal.jsonl holds one JSON record per mutation since that checkpoint.
//
// Open replays the snapshot and then the WAL, so a crash between appends
// loses at most the record being written (truncated trailing lines are
// ignored). Compact writes a fresh snapshot and resets the WAL.
package tdb

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"mdm/internal/rdf"
	"mdm/internal/rdf/turtle"
)

const (
	snapshotFile = "snapshot.trig"
	walFile      = "wal.jsonl"
)

// Store is a durable rdf.Dataset. All mutations must go through the
// Store's methods so they hit the WAL; reads can use the Dataset
// directly. Store is safe for concurrent use.
type Store struct {
	mu     sync.Mutex
	dir    string
	ds     *rdf.Dataset
	wal    *os.File
	walBuf *bufio.Writer
	closed bool
	// walRecords counts records appended since the last compaction; used
	// by AutoCompact.
	walRecords int
}

// walRecord is one logged mutation.
type walRecord struct {
	Op     string    `json:"op"` // add | remove | drop | prefix
	Quad   *jsonQuad `json:"quad,omitempty"`
	Graph  *jsonTerm `json:"graph,omitempty"`
	Prefix string    `json:"prefix,omitempty"`
	NS     string    `json:"ns,omitempty"`
}

// jsonTerm is the WAL encoding of an rdf.Term.
type jsonTerm struct {
	K  uint8  `json:"k"`
	V  string `json:"v"`
	DT string `json:"dt,omitempty"`
	LG string `json:"lg,omitempty"`
}

// jsonQuad serializes as a compact JSON array of 3 or 4 terms via the
// custom (Un)MarshalJSON methods below.
type jsonQuad struct {
	S, P, O jsonTerm
	G       *jsonTerm
}

func encTerm(t rdf.Term) jsonTerm {
	return jsonTerm{K: uint8(t.Kind), V: t.Value, DT: t.Datatype, LG: t.Lang}
}

func decTerm(j jsonTerm) rdf.Term {
	return rdf.Term{Kind: rdf.TermKind(j.K), Value: j.V, Datatype: j.DT, Lang: j.LG}
}

func encQuad(q rdf.Quad) *jsonQuad {
	jq := &jsonQuad{S: encTerm(q.S), P: encTerm(q.P), O: encTerm(q.O)}
	if !q.Graph.IsZero() {
		g := encTerm(q.Graph)
		jq.G = &g
	}
	return jq
}

func (jq *jsonQuad) quad() rdf.Quad {
	q := rdf.Quad{Triple: rdf.T(decTerm(jq.S), decTerm(jq.P), decTerm(jq.O))}
	if jq.G != nil {
		q.Graph = decTerm(*jq.G)
	}
	return q
}

// MarshalJSON flattens the quad to a compact array-of-terms form.
func (jq *jsonQuad) MarshalJSON() ([]byte, error) {
	arr := []jsonTerm{jq.S, jq.P, jq.O}
	if jq.G != nil {
		arr = append(arr, *jq.G)
	}
	return json.Marshal(arr)
}

// UnmarshalJSON reverses MarshalJSON.
func (jq *jsonQuad) UnmarshalJSON(b []byte) error {
	var arr []jsonTerm
	if err := json.Unmarshal(b, &arr); err != nil {
		return err
	}
	if len(arr) != 3 && len(arr) != 4 {
		return fmt.Errorf("tdb: quad record has %d terms", len(arr))
	}
	jq.S, jq.P, jq.O = arr[0], arr[1], arr[2]
	if len(arr) == 4 {
		g := arr[3]
		jq.G = &g
	}
	return nil
}

// Open loads (or creates) a store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tdb: create dir: %w", err)
	}
	ds := rdf.NewDataset()

	snapPath := filepath.Join(dir, snapshotFile)
	if data, err := os.ReadFile(snapPath); err == nil {
		loaded, perr := turtle.ParseDataset(string(data))
		if perr != nil {
			return nil, fmt.Errorf("tdb: corrupt snapshot: %w", perr)
		}
		ds = loaded
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("tdb: read snapshot: %w", err)
	}

	s := &Store{dir: dir, ds: ds}
	if err := s.replayWAL(); err != nil {
		return nil, err
	}
	wal, err := os.OpenFile(filepath.Join(dir, walFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("tdb: open wal: %w", err)
	}
	s.wal = wal
	s.walBuf = bufio.NewWriter(wal)
	return s, nil
}

func (s *Store) replayWAL() error {
	f, err := os.Open(filepath.Join(s.dir, walFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("tdb: open wal for replay: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	// WAL records cluster by graph (MDM mutates one named graph at a
	// time), so cache the last graph to skip a dataset lookup per record.
	var cache graphCache
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec walRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// A torn final record from a crash is tolerated; anything
			// else would also appear torn, so stop replay here.
			break
		}
		s.applyLocked(rec, &cache)
		s.walRecords++
	}
	return sc.Err()
}

// graphCache memoizes the most recent Dataset.Graph resolution during
// WAL replay.
type graphCache struct {
	name  rdf.Term
	graph *rdf.Graph
}

func (c *graphCache) get(ds *rdf.Dataset, name rdf.Term) *rdf.Graph {
	if c.graph == nil || c.name != name {
		c.graph = ds.Graph(name)
		c.name = name
	}
	return c.graph
}

func (c *graphCache) invalidate() { c.graph = nil }

func (s *Store) applyLocked(rec walRecord, cache *graphCache) {
	switch rec.Op {
	case "add":
		if rec.Quad != nil {
			q := rec.Quad.quad()
			_, _ = cache.get(s.ds, q.Graph).Add(q.Triple)
		}
	case "remove":
		if rec.Quad != nil {
			q := rec.Quad.quad()
			cache.get(s.ds, q.Graph).Remove(q.Triple)
		}
	case "drop":
		if rec.Graph != nil {
			s.ds.DropGraph(decTerm(*rec.Graph))
			cache.invalidate()
		}
	case "prefix":
		s.ds.Prefixes().Bind(rec.Prefix, rec.NS)
	}
}

func (s *Store) append(rec walRecord) error {
	if s.closed {
		return errors.New("tdb: store is closed")
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("tdb: encode wal record: %w", err)
	}
	if _, err := s.walBuf.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("tdb: append wal: %w", err)
	}
	if err := s.walBuf.Flush(); err != nil {
		return fmt.Errorf("tdb: flush wal: %w", err)
	}
	s.walRecords++
	return nil
}

// Dataset returns the live dataset. Mutate only through Store methods.
func (s *Store) Dataset() *rdf.Dataset {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ds
}

// AddQuad durably inserts a quad.
func (s *Store) AddQuad(q rdf.Quad) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !q.Triple.Valid() {
		return fmt.Errorf("tdb: invalid quad %s", q)
	}
	added, err := s.ds.AddQuad(q)
	if err != nil {
		return err
	}
	if !added {
		return nil // no-op, nothing to log
	}
	return s.append(walRecord{Op: "add", Quad: encQuad(q)})
}

// AddTriple durably inserts a triple into the default graph.
func (s *Store) AddTriple(t rdf.Triple) error {
	return s.AddQuad(rdf.Quad{Triple: t})
}

// RemoveQuad durably removes a quad, reporting whether it was present.
func (s *Store) RemoveQuad(q rdf.Quad) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ds.Graph(q.Graph).Remove(q.Triple) {
		return false, nil
	}
	return true, s.append(walRecord{Op: "remove", Quad: encQuad(q)})
}

// DropGraph durably removes an entire named graph.
func (s *Store) DropGraph(name rdf.Term) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ds.DropGraph(name) {
		return nil
	}
	g := encTerm(name)
	return s.append(walRecord{Op: "drop", Graph: &g})
}

// BindPrefix durably registers a prefix binding.
func (s *Store) BindPrefix(prefix, ns string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ds.Prefixes().Bind(prefix, ns)
	return s.append(walRecord{Op: "prefix", Prefix: prefix, NS: ns})
}

// WALRecords returns the number of WAL records since the last compaction
// (including records replayed at Open).
func (s *Store) WALRecords() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walRecords
}

// Compact writes a fresh snapshot of the dataset and truncates the WAL.
// The snapshot is written to a temp file and renamed, so a crash during
// compaction leaves the previous snapshot + WAL intact.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("tdb: store is closed")
	}
	tmp := filepath.Join(s.dir, snapshotFile+".tmp")
	if err := os.WriteFile(tmp, []byte(turtle.WriteDataset(s.ds)), 0o644); err != nil {
		return fmt.Errorf("tdb: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotFile)); err != nil {
		return fmt.Errorf("tdb: publish snapshot: %w", err)
	}
	// Reset the WAL only after the snapshot is durable.
	if err := s.walBuf.Flush(); err != nil {
		return err
	}
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("tdb: truncate wal: %w", err)
	}
	if _, err := s.wal.Seek(0, 0); err != nil {
		return err
	}
	s.walBuf.Reset(s.wal)
	s.walRecords = 0
	return nil
}

// AutoCompact compacts when the WAL has accumulated at least threshold
// records. It reports whether a compaction ran.
func (s *Store) AutoCompact(threshold int) (bool, error) {
	if s.WALRecords() < threshold {
		return false, nil
	}
	return true, s.Compact()
}

// Close flushes and closes the WAL. The store cannot be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.walBuf.Flush(); err != nil {
		s.wal.Close()
		return err
	}
	return s.wal.Close()
}
