package tdb

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"mdm/internal/rdf"
	"mdm/internal/sparql"
	"mdm/internal/tdb/segment"
)

func openT(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestOpenEmptyAndBasicAdd(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	defer s.Close()

	if err := s.AddTriple(rdf.T(rdf.IRI("s"), rdf.IRI("p"), rdf.Lit("v"))); err != nil {
		t.Fatal(err)
	}
	if err := s.AddQuad(rdf.Q(rdf.IRI("s"), rdf.IRI("p"), rdf.Lit("n"), rdf.IRI("g"))); err != nil {
		t.Fatal(err)
	}
	if s.Dataset().Len() != 2 {
		t.Fatalf("Len = %d", s.Dataset().Len())
	}
	if s.WALRecords() != 2 {
		t.Fatalf("WALRecords = %d", s.WALRecords())
	}
}

func TestAddInvalidQuadRejected(t *testing.T) {
	s := openT(t, t.TempDir())
	defer s.Close()
	if err := s.AddTriple(rdf.T(rdf.Lit("bad"), rdf.IRI("p"), rdf.Lit("v"))); err == nil {
		t.Fatal("invalid triple accepted")
	}
	if s.WALRecords() != 0 {
		t.Fatal("invalid triple reached the WAL")
	}
}

func TestDuplicateAddNotLogged(t *testing.T) {
	s := openT(t, t.TempDir())
	defer s.Close()
	tr := rdf.T(rdf.IRI("s"), rdf.IRI("p"), rdf.Lit("v"))
	if err := s.AddTriple(tr); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTriple(tr); err != nil {
		t.Fatal(err)
	}
	if s.WALRecords() != 1 {
		t.Fatalf("duplicate add was logged: WALRecords = %d", s.WALRecords())
	}
}

func TestReopenReplaysWAL(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	tr := rdf.T(rdf.IRI("http://ex/s"), rdf.IRI("http://ex/p"), rdf.TypedLit("7", rdf.XSDInteger))
	if err := s.AddTriple(tr); err != nil {
		t.Fatal(err)
	}
	if err := s.AddQuad(rdf.Q(rdf.IRI("a"), rdf.IRI("b"), rdf.LangLit("x", "en"), rdf.IRI("g1"))); err != nil {
		t.Fatal(err)
	}
	if err := s.BindPrefix("ex", "http://ex/"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir)
	defer s2.Close()
	if !s2.Dataset().Default().Has(tr) {
		t.Error("default-graph triple lost across reopen")
	}
	g, ok := s2.Dataset().Lookup(rdf.IRI("g1"))
	if !ok || !g.Has(rdf.T(rdf.IRI("a"), rdf.IRI("b"), rdf.LangLit("x", "en"))) {
		t.Error("named-graph quad lost across reopen")
	}
	if iri, ok := s2.Dataset().Prefixes().Expand("ex:s"); !ok || iri != "http://ex/s" {
		t.Error("prefix binding lost across reopen")
	}
}

func TestRemoveAndDropSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	keep := rdf.T(rdf.IRI("keep"), rdf.IRI("p"), rdf.Lit("v"))
	gone := rdf.T(rdf.IRI("gone"), rdf.IRI("p"), rdf.Lit("v"))
	if err := s.AddTriple(keep); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTriple(gone); err != nil {
		t.Fatal(err)
	}
	removed, err := s.RemoveQuad(rdf.Quad{Triple: gone})
	if err != nil || !removed {
		t.Fatalf("RemoveQuad = %v, %v", removed, err)
	}
	if removed, _ := s.RemoveQuad(rdf.Quad{Triple: gone}); removed {
		t.Fatal("double remove reported true")
	}
	if err := s.AddQuad(rdf.Q(rdf.IRI("x"), rdf.IRI("y"), rdf.Lit("z"), rdf.IRI("dropme"))); err != nil {
		t.Fatal(err)
	}
	if err := s.DropGraph(rdf.IRI("dropme")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := openT(t, dir)
	defer s2.Close()
	if !s2.Dataset().Default().Has(keep) {
		t.Error("kept triple missing")
	}
	if s2.Dataset().Default().Has(gone) {
		t.Error("removed triple resurrected")
	}
	if _, ok := s2.Dataset().Lookup(rdf.IRI("dropme")); ok {
		t.Error("dropped graph resurrected")
	}
}

func TestCompactThenReopen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.BindPrefix("ex", "http://ex/")
	for i := 0; i < 20; i++ {
		if err := s.AddTriple(rdf.T(rdf.IRI("http://ex/s"), rdf.IRI("http://ex/p"), rdf.IntLit(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if s.WALRecords() != 0 {
		t.Fatalf("WALRecords after compact = %d", s.WALRecords())
	}
	// Post-compaction writes land in the fresh WAL.
	if err := s.AddTriple(rdf.T(rdf.IRI("post"), rdf.IRI("p"), rdf.Lit("v"))); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Compaction publishes a manifest naming one full segment; the legacy
	// snapshot file must be gone.
	man, err := segment.LoadManifest(dir)
	if err != nil || man == nil {
		t.Fatalf("LoadManifest after compact = %v, %v", man, err)
	}
	if len(man.Segments) != 1 {
		t.Fatalf("segments after compact = %v", man.Segments)
	}
	if _, err := segment.ReadStats(filepath.Join(dir, man.Segments[0])); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotFile)); !os.IsNotExist(err) {
		t.Fatalf("legacy snapshot still present after compact: %v", err)
	}
	s2 := openT(t, dir)
	defer s2.Close()
	if got := s2.Dataset().Default().Len(); got != 21 {
		t.Fatalf("triples after compact+reopen = %d, want 21", got)
	}
	if iri, ok := s2.Dataset().Prefixes().Expand("ex:a"); !ok || iri != "http://ex/a" {
		t.Error("prefix lost through snapshot")
	}
}

func TestAutoCompact(t *testing.T) {
	s := openT(t, t.TempDir())
	defer s.Close()
	for i := 0; i < 5; i++ {
		s.AddTriple(rdf.T(rdf.IRI("s"), rdf.IRI("p"), rdf.IntLit(int64(i))))
	}
	ran, err := s.AutoCompact(10)
	if err != nil || ran {
		t.Fatalf("AutoCompact below threshold = %v, %v", ran, err)
	}
	ran, err = s.AutoCompact(5)
	if err != nil || !ran {
		t.Fatalf("AutoCompact at threshold = %v, %v", ran, err)
	}
	if s.WALRecords() != 0 {
		t.Fatal("WAL not reset by AutoCompact")
	}
}

func TestTornWALRecordIgnored(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.AddTriple(rdf.T(rdf.IRI("s"), rdf.IRI("p"), rdf.Lit("v")))
	s.Close()

	// Simulate a crash mid-append: truncated JSON on the last line.
	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"op":"add","quad":[{"k":0,"v":"torn`)
	f.Close()

	s2 := openT(t, dir)
	defer s2.Close()
	if got := s2.Dataset().Default().Len(); got != 1 {
		t.Fatalf("Len after torn WAL = %d, want 1", got)
	}
}

func TestClosedStoreRejectsWrites(t *testing.T) {
	s := openT(t, t.TempDir())
	s.Close()
	if err := s.AddTriple(rdf.T(rdf.IRI("s"), rdf.IRI("p"), rdf.Lit("v"))); err == nil {
		t.Error("write after Close should fail")
	}
	if err := s.Compact(); err == nil {
		t.Error("Compact after Close should fail")
	}
	if err := s.Close(); err != nil {
		t.Errorf("double Close should be nil, got %v", err)
	}
}

func TestCorruptSnapshotReported(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapshotFile), []byte("not turtle <"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "corrupt snapshot") {
		t.Fatalf("Open on corrupt snapshot = %v", err)
	}
}

func TestLiteralFidelityThroughWALAndSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	terms := []rdf.Term{
		rdf.Lit("plain"),
		rdf.LangLit("hola", "es"),
		rdf.TypedLit("170.18", rdf.XSDDouble),
		rdf.IntLit(-42),
		rdf.BoolLit(false),
		rdf.Lit("esc \"quotes\" and\nnewline"),
	}
	for i, o := range terms {
		if err := s.AddTriple(rdf.T(rdf.IRI("s"), rdf.IRI("p"), o)); err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
	}
	s.Close()
	// Reopen (WAL replay), verify, compact (snapshot), reopen again.
	s2 := openT(t, dir)
	for _, o := range terms {
		if !s2.Dataset().Default().Has(rdf.T(rdf.IRI("s"), rdf.IRI("p"), o)) {
			t.Errorf("term %s lost in WAL replay", o)
		}
	}
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := openT(t, dir)
	defer s3.Close()
	for _, o := range terms {
		if !s3.Dataset().Default().Has(rdf.T(rdf.IRI("s"), rdf.IRI("p"), o)) {
			t.Errorf("term %s lost in snapshot round trip", o)
		}
	}
}

// TestConcurrentQueriesDuringAppends exercises the locking contract of
// the dataset-shared dictionary: SPARQL evaluation snapshots the
// append-only Dict (rdf.Dict.Snapshot) and takes per-graph read locks,
// while Store appends intern new terms concurrently. Run with -race
// (CI does) to verify the contract.
func TestConcurrentQueriesDuringAppends(t *testing.T) {
	s := openT(t, t.TempDir())
	defer s.Close()

	ex := func(n string) rdf.Term { return rdf.IRI("http://ex/" + n) }
	p := ex("p")
	for i := 0; i < 20; i++ {
		if err := s.AddTriple(rdf.T(ex(fmt.Sprintf("s%d", i)), p, rdf.IntLit(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	// A join fixture big enough that the planner's cost threshold picks
	// the morsel-parallel hash join on its own (parCost >= 4096), so the
	// parallel build/probe workers race real concurrent Dict interning.
	for i := 0; i < 3000; i++ {
		if err := s.AddTriple(rdf.T(ex(fmt.Sprintf("j%d", i)), ex("p1"), ex(fmt.Sprintf("m%d", i%50)))); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < 50; k++ {
		if err := s.AddTriple(rdf.T(ex(fmt.Sprintf("m%d", k)), ex("p2"), rdf.IntLit(int64(k)))); err != nil {
			t.Fatal(err)
		}
	}
	sparql.SetParallelism(4)
	defer sparql.SetParallelism(0)

	ds := s.Dataset()
	const query = `SELECT ?s ?o WHERE { ?s <http://ex/p> ?o . FILTER (?o >= 0) }`
	const graphQuery = `SELECT ?g ?s WHERE { GRAPH ?g { ?s <http://ex/p> ?o } }`
	const joinQuery = `SELECT ?a ?c WHERE { ?a <http://ex/p1> ?b . ?b <http://ex/p2> ?c }`

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var qerr atomic.Value
	for w := 0; w < 6; w++ {
		wg.Add(1)
		q := query
		switch w % 3 {
		case 1:
			q = graphQuery
		case 2:
			q = joinQuery
		}
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := sparql.Run(ds, q); err != nil {
					qerr.Store(err)
					return
				}
			}
		}()
	}
	for i := 0; i < 150; i++ {
		q := rdf.Q(ex(fmt.Sprintf("n%d", i)), p, rdf.IntLit(int64(i)), rdf.Term{})
		if i%3 == 0 {
			q.Graph = ex(fmt.Sprintf("g%d", i%5))
		}
		if err := s.AddQuad(q); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if err := qerr.Load(); err != nil {
		t.Fatalf("concurrent query failed: %v", err)
	}

	res, err := sparql.Run(ds, query)
	if err != nil {
		t.Fatal(err)
	}
	if want := 20 + 100; res.Len() != want { // 150 appends, every 3rd into a named graph
		t.Fatalf("rows after appends = %d, want %d", res.Len(), want)
	}
	res, err = sparql.Run(ds, joinQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3000 {
		t.Fatalf("parallel join rows = %d, want 3000", res.Len())
	}
}
