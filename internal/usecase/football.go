// Package usecase builds the paper's motivational use case: four REST
// data sources about european football — players, teams, leagues and
// countries (Figure 1) — integrated under the BDI ontology with LAV
// mappings (Figures 5–7), plus the schema-evolution release used in the
// "Governance of evolution" demo scenario.
//
// Tests, examples and the benchmark harness all build on this package so
// that every reproduction of a paper artifact uses the same fixture.
package usecase

import (
	"fmt"

	"mdm/internal/bdi"
	"mdm/internal/rdf"
	"mdm/internal/relalg"
	"mdm/internal/rewrite"
	"mdm/internal/schema"
	"mdm/internal/wrapper"
)

// EX is the example namespace used when no vocabulary can be reused
// (paper §2.1: "we define the example's custom prefix ex").
const EX = "http://www.example.org/football/"

// Global-graph vocabulary of the use case. Team and Country reuse
// schema.org classes, following the Linked Data reuse principle the
// paper highlights for sc:SportsTeam.
var (
	Player  = rdf.IRI(EX + "Player")
	Team    = rdf.IRI(bdi.NSSchema + "SportsTeam")
	League  = rdf.IRI(EX + "League")
	Country = rdf.IRI(bdi.NSSchema + "Country")

	PlayerID   = rdf.IRI(EX + "playerId")
	PlayerName = rdf.IRI(EX + "playerName")
	Height     = rdf.IRI(EX + "height")
	Weight     = rdf.IRI(EX + "weight")
	Rating     = rdf.IRI(EX + "rating")
	Foot       = rdf.IRI(EX + "foot")
	Position   = rdf.IRI(EX + "position") // introduced by the v2 release

	TeamID        = rdf.IRI(EX + "teamId")
	TeamName      = rdf.IRI(EX + "teamName")
	TeamShortName = rdf.IRI(EX + "teamShortName")

	LeagueID   = rdf.IRI(EX + "leagueId")
	LeagueName = rdf.IRI(EX + "leagueName")

	CountryID   = rdf.IRI(EX + "countryId")
	CountryName = rdf.IRI(EX + "countryName")

	PlaysIn        = rdf.IRI(EX + "playsIn")
	CompetesIn     = rdf.IRI(EX + "competesIn")
	InCountry      = rdf.IRI(EX + "inCountry")
	HasNationality = rdf.IRI(EX + "hasNationality")
)

// Source IDs of the four REST APIs.
const (
	SrcPlayers   = "players-api"
	SrcTeams     = "teams-api"
	SrcLeagues   = "leagues-api"
	SrcCountries = "countries-api"
)

// Fixture bundles the fully set-up ontology and wrapper registry.
type Fixture struct {
	Ont *bdi.Ontology
	Reg *wrapper.Registry
	// Wrapper handles, exposed so tests can mutate source data.
	W1, W2, W3, W4, W5, W6 *wrapper.Mem
	// W1v2 is non-nil after ReleasePlayersV2.
	W1v2 *wrapper.Mem
}

// New builds the complete use case: global graph, four sources, six
// wrappers with data, and all LAV mappings. It panics only via bugs —
// all fixture construction errors are returned.
func New() (*Fixture, error) {
	f := &Fixture{Ont: bdi.New(), Reg: wrapper.NewRegistry()}
	f.Ont.Dataset().Prefixes().Bind("ex", EX)
	if err := f.buildGlobalGraph(); err != nil {
		return nil, fmt.Errorf("usecase: global graph: %w", err)
	}
	if err := f.buildSourcesAndWrappers(); err != nil {
		return nil, fmt.Errorf("usecase: sources: %w", err)
	}
	if err := f.defineMappings(); err != nil {
		return nil, fmt.Errorf("usecase: mappings: %w", err)
	}
	if v := f.Ont.Validate(); len(v) > 0 {
		return nil, fmt.Errorf("usecase: ontology inconsistent: %v", v)
	}
	return f, nil
}

// MustNew is New for fixtures in tests and benches.
func MustNew() *Fixture {
	f, err := New()
	if err != nil {
		panic(err)
	}
	return f
}

func (f *Fixture) buildGlobalGraph() error {
	o := f.Ont
	type conceptDef struct {
		c     rdf.Term
		label string
		id    rdf.Term
		feats []rdf.Term
	}
	defs := []conceptDef{
		{Player, "Player", PlayerID, []rdf.Term{PlayerID, PlayerName, Height, Weight, Rating, Foot}},
		{Team, "SportsTeam", TeamID, []rdf.Term{TeamID, TeamName, TeamShortName}},
		{League, "League", LeagueID, []rdf.Term{LeagueID, LeagueName}},
		{Country, "Country", CountryID, []rdf.Term{CountryID, CountryName}},
	}
	for _, d := range defs {
		if err := o.AddConcept(d.c, d.label); err != nil {
			return err
		}
		for _, ft := range d.feats {
			if err := o.AddFeature(ft, ft.LocalName()); err != nil {
				return err
			}
			if err := o.AttachFeature(d.c, ft); err != nil {
				return err
			}
		}
		if err := o.MarkIdentifier(d.id); err != nil {
			return err
		}
	}
	rels := []rdf.Triple{
		rdf.T(Player, PlaysIn, Team),
		rdf.T(Team, CompetesIn, League),
		rdf.T(League, InCountry, Country),
		rdf.T(Player, HasNationality, Country),
	}
	for _, r := range rels {
		if err := o.RelateConcepts(r.S, r.P, r.O); err != nil {
			return err
		}
	}
	return nil
}

// row builds a schema.Doc tersely.
func row(kv ...any) schema.Doc {
	d := schema.Doc{}
	for i := 0; i+1 < len(kv); i += 2 {
		k := kv[i].(string)
		switch v := kv[i+1].(type) {
		case int:
			d[k] = relalg.Int(int64(v))
		case int64:
			d[k] = relalg.Int(v)
		case float64:
			d[k] = relalg.Float(v)
		case string:
			d[k] = relalg.String(v)
		case bool:
			d[k] = relalg.Bool(v)
		default:
			panic(fmt.Sprintf("usecase: unsupported fixture value %T", v))
		}
	}
	return d
}

// PlayersV1Docs returns the players-api v1 payload rows (wrapper w1).
func PlayersV1Docs() []schema.Doc {
	return []schema.Doc{
		row("id", 6176, "pName", "Lionel Messi", "height", 170.18, "weight", 159, "score", 94, "foot", "left", "teamId", 25),
		row("id", 7011, "pName", "Robert Lewandowski", "height", 184.0, "weight", 176, "score", 91, "foot", "right", "teamId", 27),
		row("id", 8123, "pName", "Zlatan Ibrahimovic", "height", 195.0, "weight", 209, "score", 90, "foot", "right", "teamId", 31),
		row("id", 9001, "pName", "Harry Kane", "height", 188.0, "weight", 196, "score", 89, "foot", "right", "teamId", 33),
		row("id", 9002, "pName", "Marcus Rashford", "height", 180.0, "weight", 154, "score", 85, "foot", "right", "teamId", 31),
	}
}

// NationalityDocs returns the players-api nationality endpoint rows (w5).
func NationalityDocs() []schema.Doc {
	return []schema.Doc{
		row("id", 6176, "countryId", 4), // Messi -> Argentina
		row("id", 7011, "countryId", 6), // Lewandowski -> Poland
		row("id", 8123, "countryId", 5), // Zlatan -> Sweden
		row("id", 9001, "countryId", 3), // Kane -> England
		row("id", 9002, "countryId", 3), // Rashford -> England
	}
}

// TeamsDocs returns the teams-api rows (w2).
func TeamsDocs() []schema.Doc {
	return []schema.Doc{
		row("id", 25, "name", "FC Barcelona", "shortName", "FCB"),
		row("id", 27, "name", "Bayern Munich", "shortName", "FCB"),
		row("id", 31, "name", "Manchester United", "shortName", "MU"),
		row("id", 33, "name", "Tottenham Hotspur", "shortName", "THFC"),
	}
}

// LeaguesDocs returns the leagues-api rows (w3).
func LeaguesDocs() []schema.Doc {
	return []schema.Doc{
		row("id", 10, "lName", "La Liga", "countryId", 1),
		row("id", 11, "lName", "Bundesliga", "countryId", 2),
		row("id", 12, "lName", "Premier League", "countryId", 3),
	}
}

// LeagueTeamsDocs returns the leagues-api membership endpoint rows (w6).
func LeagueTeamsDocs() []schema.Doc {
	return []schema.Doc{
		row("leagueId", 10, "teamId", 25),
		row("leagueId", 11, "teamId", 27),
		row("leagueId", 12, "teamId", 31),
		row("leagueId", 12, "teamId", 33),
	}
}

// CountriesDocs returns the countries-api rows (w4).
func CountriesDocs() []schema.Doc {
	return []schema.Doc{
		row("id", 1, "cName", "Spain"),
		row("id", 2, "cName", "Germany"),
		row("id", 3, "cName", "England"),
		row("id", 4, "cName", "Argentina"),
		row("id", 5, "cName", "Sweden"),
		row("id", 6, "cName", "Poland"),
	}
}

// PlayersV2Docs returns the breaking v2 payload of the players API: the
// pName field is renamed to fullName, weight and score are gone, and a
// new position field appears.
func PlayersV2Docs() []schema.Doc {
	return []schema.Doc{
		row("id", 6176, "fullName", "Lionel Messi", "height", 170.18, "foot", "left", "position", "RW", "teamId", 25),
		row("id", 7011, "fullName", "Robert Lewandowski", "height", 184.0, "foot", "right", "position", "ST", "teamId", 27),
		row("id", 9050, "fullName", "Pedri", "height", 174.0, "foot", "right", "position", "CM", "teamId", 25),
		row("id", 9051, "fullName", "Bukayo Saka", "height", 178.0, "foot", "left", "position", "RW", "teamId", 33),
	}
}

func (f *Fixture) buildSourcesAndWrappers() error {
	o := f.Ont
	sources := []struct{ id, label string }{
		{SrcPlayers, "Players API"},
		{SrcTeams, "Teams API"},
		{SrcLeagues, "Leagues API"},
		{SrcCountries, "Countries API"},
	}
	for _, s := range sources {
		if err := o.AddDataSource(s.id, s.label); err != nil {
			return err
		}
	}
	f.W1 = wrapper.NewMem("w1", SrcPlayers, PlayersV1Docs(), nil)
	f.W5 = wrapper.NewMem("w5", SrcPlayers, NationalityDocs(), nil)
	f.W2 = wrapper.NewMem("w2", SrcTeams, TeamsDocs(), nil)
	f.W3 = wrapper.NewMem("w3", SrcLeagues, LeaguesDocs(), nil)
	f.W6 = wrapper.NewMem("w6", SrcLeagues, LeagueTeamsDocs(), nil)
	f.W4 = wrapper.NewMem("w4", SrcCountries, CountriesDocs(), nil)
	for _, w := range []*wrapper.Mem{f.W1, f.W2, f.W3, f.W4, f.W5, f.W6} {
		if err := f.Reg.Register(w); err != nil {
			return err
		}
		if err := o.RegisterWrapper(w.SourceID(), w.Signature()); err != nil {
			return err
		}
	}
	return nil
}

func (f *Fixture) defineMappings() error {
	o := f.Ont
	rt := rdf.IRI(rdf.RDFType)

	// w1: Player (all base features) + playsIn + Team identifier — the
	// red contour of Figure 7.
	if err := o.DefineMapping(bdi.Mapping{
		Wrapper: "w1",
		Subgraph: []rdf.Triple{
			rdf.T(Player, rt, bdi.ClassConcept),
			rdf.T(Player, bdi.PropHasFeature, PlayerID),
			rdf.T(Player, bdi.PropHasFeature, PlayerName),
			rdf.T(Player, bdi.PropHasFeature, Height),
			rdf.T(Player, bdi.PropHasFeature, Weight),
			rdf.T(Player, bdi.PropHasFeature, Rating),
			rdf.T(Player, bdi.PropHasFeature, Foot),
			rdf.T(Player, PlaysIn, Team),
			rdf.T(Team, rt, bdi.ClassConcept),
			rdf.T(Team, bdi.PropHasFeature, TeamID),
		},
		SameAs: map[string]rdf.Term{
			"id": PlayerID, "pName": PlayerName, "height": Height,
			"weight": Weight, "score": Rating, "foot": Foot, "teamId": TeamID,
		},
	}); err != nil {
		return err
	}

	// w2: Team with all features — the green contour of Figure 7; note
	// the intersection with w1 at sc:SportsTeam and its identifier.
	if err := o.DefineMapping(bdi.Mapping{
		Wrapper: "w2",
		Subgraph: []rdf.Triple{
			rdf.T(Team, rt, bdi.ClassConcept),
			rdf.T(Team, bdi.PropHasFeature, TeamID),
			rdf.T(Team, bdi.PropHasFeature, TeamName),
			rdf.T(Team, bdi.PropHasFeature, TeamShortName),
		},
		SameAs: map[string]rdf.Term{
			"id": TeamID, "name": TeamName, "shortName": TeamShortName,
		},
	}); err != nil {
		return err
	}

	// w3: League + inCountry + Country identifier.
	if err := o.DefineMapping(bdi.Mapping{
		Wrapper: "w3",
		Subgraph: []rdf.Triple{
			rdf.T(League, rt, bdi.ClassConcept),
			rdf.T(League, bdi.PropHasFeature, LeagueID),
			rdf.T(League, bdi.PropHasFeature, LeagueName),
			rdf.T(League, InCountry, Country),
			rdf.T(Country, rt, bdi.ClassConcept),
			rdf.T(Country, bdi.PropHasFeature, CountryID),
		},
		SameAs: map[string]rdf.Term{
			"id": LeagueID, "lName": LeagueName, "countryId": CountryID,
		},
	}); err != nil {
		return err
	}

	// w4: Country with all features.
	if err := o.DefineMapping(bdi.Mapping{
		Wrapper: "w4",
		Subgraph: []rdf.Triple{
			rdf.T(Country, rt, bdi.ClassConcept),
			rdf.T(Country, bdi.PropHasFeature, CountryID),
			rdf.T(Country, bdi.PropHasFeature, CountryName),
		},
		SameAs: map[string]rdf.Term{"id": CountryID, "cName": CountryName},
	}); err != nil {
		return err
	}

	// w5: Player identifier + hasNationality + Country identifier.
	if err := o.DefineMapping(bdi.Mapping{
		Wrapper: "w5",
		Subgraph: []rdf.Triple{
			rdf.T(Player, rt, bdi.ClassConcept),
			rdf.T(Player, bdi.PropHasFeature, PlayerID),
			rdf.T(Player, HasNationality, Country),
			rdf.T(Country, rt, bdi.ClassConcept),
			rdf.T(Country, bdi.PropHasFeature, CountryID),
		},
		SameAs: map[string]rdf.Term{"id": PlayerID, "countryId": CountryID},
	}); err != nil {
		return err
	}

	// w6: Team identifier + competesIn + League identifier.
	if err := o.DefineMapping(bdi.Mapping{
		Wrapper: "w6",
		Subgraph: []rdf.Triple{
			rdf.T(Team, rt, bdi.ClassConcept),
			rdf.T(Team, bdi.PropHasFeature, TeamID),
			rdf.T(Team, CompetesIn, League),
			rdf.T(League, rt, bdi.ClassConcept),
			rdf.T(League, bdi.PropHasFeature, LeagueID),
		},
		SameAs: map[string]rdf.Term{"teamId": TeamID, "leagueId": LeagueID},
	}); err != nil {
		return err
	}
	return nil
}

// ReleasePlayersV2 performs the "Governance of evolution" scenario: the
// players API ships a breaking v2 (field renames and removals, one new
// field). A new wrapper w1v2 is registered for the SAME data source, the
// new position feature is added to the global graph, and the LAV mapping
// for w1v2 is defined. Existing queries keep working and now draw from
// both schema versions.
func (f *Fixture) ReleasePlayersV2() error {
	if f.W1v2 != nil {
		return fmt.Errorf("usecase: players v2 already released")
	}
	o := f.Ont
	// Accommodate the new field as a new global feature.
	if err := o.AddFeature(Position, "position"); err != nil {
		return err
	}
	if err := o.AttachFeature(Player, Position); err != nil {
		return err
	}
	w := wrapper.NewMem("w1v2", SrcPlayers, PlayersV2Docs(), nil)
	if err := f.Reg.Register(w); err != nil {
		return err
	}
	if err := o.RegisterWrapper(SrcPlayers, w.Signature()); err != nil {
		return err
	}
	rt := rdf.IRI(rdf.RDFType)
	if err := o.DefineMapping(bdi.Mapping{
		Wrapper: "w1v2",
		Subgraph: []rdf.Triple{
			rdf.T(Player, rt, bdi.ClassConcept),
			rdf.T(Player, bdi.PropHasFeature, PlayerID),
			rdf.T(Player, bdi.PropHasFeature, PlayerName),
			rdf.T(Player, bdi.PropHasFeature, Height),
			rdf.T(Player, bdi.PropHasFeature, Foot),
			rdf.T(Player, bdi.PropHasFeature, Position),
			rdf.T(Player, PlaysIn, Team),
			rdf.T(Team, rt, bdi.ClassConcept),
			rdf.T(Team, bdi.PropHasFeature, TeamID),
		},
		SameAs: map[string]rdf.Term{
			"id": PlayerID, "fullName": PlayerName, "height": Height,
			"foot": Foot, "position": Position, "teamId": TeamID,
		},
	}); err != nil {
		return err
	}
	f.W1v2 = w
	return nil
}

// Fig8Walk returns the walk of Figure 8: the names of players and their
// teams ("fetching the name of the players and their teams").
func Fig8Walk() *rewrite.Walk {
	return rewrite.NewWalk().
		SelectAs(Team, TeamName, "teamName").
		SelectAs(Player, PlayerName, "playerName").
		Relate(Player, PlaysIn, Team)
}

// NationalityWalk returns the paper's exemplary OMQ: "who are the
// players that play in a league of their nationality?". The walk spans
// Player, Team, League and Country; the rewriting joins the two paths to
// Country through the shared countryId identifier.
func NationalityWalk() *rewrite.Walk {
	return rewrite.NewWalk().
		SelectAs(Player, PlayerName, "playerName").
		SelectAs(League, LeagueName, "leagueName").
		SelectAs(Country, CountryName, "countryName").
		Relate(Player, PlaysIn, Team).
		Relate(Team, CompetesIn, League).
		Relate(League, InCountry, Country).
		Relate(Player, HasNationality, Country)
}

// PositionWalk queries the feature introduced by the v2 release; only
// answerable after ReleasePlayersV2.
func PositionWalk() *rewrite.Walk {
	return rewrite.NewWalk().
		SelectAs(Player, PlayerName, "playerName").
		SelectAs(Player, Position, "position")
}
