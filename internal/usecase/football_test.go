package usecase

import (
	"context"
	"testing"

	"mdm/internal/rdf"
)

func TestFixtureConsistent(t *testing.T) {
	f, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if v := f.Ont.Validate(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
	st := f.Ont.Stats()
	if st.Concepts != 4 {
		t.Errorf("concepts = %d", st.Concepts)
	}
	if st.Sources != 4 || st.Wrappers != 6 || st.Mappings != 6 {
		t.Errorf("stats = %+v", st)
	}
	if f.Reg.Len() != 6 {
		t.Errorf("registry = %d", f.Reg.Len())
	}
}

func TestFixtureIdentifiers(t *testing.T) {
	f := MustNew()
	for _, c := range []struct {
		concept, id rdf.Term
	}{
		{Player, PlayerID}, {Team, TeamID}, {League, LeagueID}, {Country, CountryID},
	} {
		id, ok := f.Ont.IdentifierOf(c.concept)
		if !ok || id != c.id {
			t.Errorf("IdentifierOf(%s) = %v, %v", c.concept.LocalName(), id, ok)
		}
	}
}

func TestFixtureWrapperData(t *testing.T) {
	f := MustNew()
	ctx := context.Background()
	counts := map[string]int{"w1": 5, "w2": 4, "w3": 3, "w4": 6, "w5": 5, "w6": 4}
	for name, want := range counts {
		w, ok := f.Reg.Get(name)
		if !ok {
			t.Fatalf("wrapper %s missing", name)
		}
		rel, err := w.Fetch(ctx)
		if err != nil {
			t.Fatalf("%s fetch: %v", name, err)
		}
		if rel.Len() != want {
			t.Errorf("%s rows = %d, want %d", name, rel.Len(), want)
		}
	}
}

func TestReleasePlayersV2Effects(t *testing.T) {
	f := MustNew()
	if err := f.ReleasePlayersV2(); err != nil {
		t.Fatal(err)
	}
	if f.W1v2 == nil {
		t.Fatal("W1v2 not set")
	}
	// Double release rejected.
	if err := f.ReleasePlayersV2(); err == nil {
		t.Error("double release accepted")
	}
	// Position feature exists and is attached to Player.
	owner, ok := f.Ont.ConceptOf(Position)
	if !ok || owner != Player {
		t.Errorf("position owner = %v, %v", owner, ok)
	}
	// Still consistent.
	if v := f.Ont.Validate(); len(v) != 0 {
		t.Errorf("violations after release: %v", v)
	}
	// players-api now has three wrappers (w1, w5, w1v2).
	if got := len(f.Ont.WrappersOf(SrcPlayers)); got != 3 {
		t.Errorf("players wrappers = %d", got)
	}
}

func TestWalkBuilders(t *testing.T) {
	if w := Fig8Walk(); len(w.Concepts) != 2 || len(w.Relations) != 1 {
		t.Errorf("Fig8Walk = %+v", w)
	}
	if w := NationalityWalk(); len(w.Concepts) != 4 || len(w.Relations) != 4 {
		t.Errorf("NationalityWalk = %+v", w)
	}
	if w := PositionWalk(); len(w.Concepts) != 1 {
		t.Errorf("PositionWalk = %+v", w)
	}
}

func TestSyntheticVersions(t *testing.T) {
	ont, reg, walk := SyntheticVersions(4)
	if reg.Len() != 6+3 {
		t.Errorf("registry = %d", reg.Len())
	}
	if got := len(ont.WrappersOf(SrcPlayers)); got != 2+3 {
		t.Errorf("players wrappers = %d", got)
	}
	if walk == nil || len(walk.Concepts) != 2 {
		t.Errorf("walk = %+v", walk)
	}
	if v := ont.Validate(); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
}

func TestSyntheticChain(t *testing.T) {
	for _, n := range []int{1, 2, 5} {
		ont, reg, walk := SyntheticChain(n)
		if len(walk.Concepts) != n {
			t.Errorf("chain %d concepts = %d", n, len(walk.Concepts))
		}
		wantWrappers := n - 1
		if n == 1 {
			wantWrappers = 1
		}
		if reg.Len() != wantWrappers {
			t.Errorf("chain %d wrappers = %d, want %d", n, reg.Len(), wantWrappers)
		}
		if v := ont.Validate(); len(v) != 0 {
			t.Errorf("chain %d violations: %v", n, v)
		}
	}
}

func TestSyntheticRows(t *testing.T) {
	players := SyntheticPlayers(50)
	if len(players) != 50 {
		t.Fatalf("players = %d", len(players))
	}
	teams := SyntheticTeams(0)
	if len(teams) != 1 {
		t.Fatalf("teams(0) = %d", len(teams))
	}
	// Every player's teamId is within the team id range for n/10+1 teams.
	for _, p := range players {
		if p["teamId"].I < 0 || p["teamId"].I >= 6 {
			t.Fatalf("teamId out of range: %v", p["teamId"])
		}
	}
}
