package usecase

import (
	"fmt"

	"mdm/internal/bdi"
	"mdm/internal/rdf"
	"mdm/internal/relalg"
	"mdm/internal/rewrite"
	"mdm/internal/schema"
	"mdm/internal/wrapper"
)

// SyntheticVersions extends the football fixture with n-1 extra schema
// versions of the players API (each a wrapper + identical mapping),
// modelling a source that has released n versions. Used by the S1 sweep.
func SyntheticVersions(n int) (*bdi.Ontology, *wrapper.Registry, *rewrite.Walk) {
	f := MustNew()
	for v := 2; v <= n; v++ {
		name := fmt.Sprintf("w1_v%d", v)
		w := wrapper.NewMem(name, SrcPlayers, PlayersV1Docs(), nil)
		if err := f.Reg.Register(w); err != nil {
			panic(err)
		}
		if err := f.Ont.RegisterWrapper(SrcPlayers, w.Signature()); err != nil {
			panic(err)
		}
		m, ok := f.Ont.MappingOf("w1")
		if !ok {
			panic("usecase: w1 mapping missing")
		}
		m.Wrapper = name
		if err := f.Ont.DefineMapping(m); err != nil {
			panic(err)
		}
	}
	return f.Ont, f.Reg, Fig8Walk()
}

// SyntheticChain builds a fresh ontology with a chain of n concepts
// C0 -> C1 -> ... -> C(n-1), one wrapper per edge, and a walk spanning
// the whole chain. Used by the S2 sweep.
func SyntheticChain(n int) (*bdi.Ontology, *wrapper.Registry, *rewrite.Walk) {
	const ns = "http://bench.local/"
	ont := bdi.New()
	reg := wrapper.NewRegistry()
	mustErr(ont.AddDataSource("chain", "chain source"))
	walk := rewrite.NewWalk()
	rt := rdf.IRI(rdf.RDFType)
	concept := func(i int) rdf.Term { return rdf.IRI(fmt.Sprintf("%sChain%d", ns, i)) }
	ident := func(i int) rdf.Term { return rdf.IRI(fmt.Sprintf("%schain%dId", ns, i)) }
	for i := 0; i < n; i++ {
		mustErr(ont.AddConcept(concept(i), ""))
		mustErr(ont.AddFeature(ident(i), fmt.Sprintf("a%d", i)))
		mustErr(ont.AttachFeature(concept(i), ident(i)))
		mustErr(ont.MarkIdentifier(ident(i)))
		walk.Select(concept(i), ident(i))
	}
	if n == 1 {
		w := wrapper.NewMem("chainw0", "chain", []schema.Doc{{"a0": relalg.Int(1)}}, nil)
		mustErr(reg.Register(w))
		mustErr(ont.RegisterWrapper("chain", w.Signature()))
		mustErr(ont.DefineMapping(bdi.Mapping{
			Wrapper: "chainw0",
			Subgraph: []rdf.Triple{
				rdf.T(concept(0), rt, bdi.ClassConcept),
				rdf.T(concept(0), bdi.PropHasFeature, ident(0)),
			},
			SameAs: map[string]rdf.Term{"a0": ident(0)},
		}))
		return ont, reg, walk
	}
	for i := 1; i < n; i++ {
		prop := rdf.IRI(fmt.Sprintf("%snext%d", ns, i-1))
		mustErr(ont.RelateConcepts(concept(i-1), prop, concept(i)))
		walk.Relate(concept(i-1), prop, concept(i))
		wname := fmt.Sprintf("chainw%d", i)
		docs := []schema.Doc{{
			fmt.Sprintf("a%d", i-1): relalg.Int(1),
			fmt.Sprintf("a%d", i):   relalg.Int(1),
		}}
		w := wrapper.NewMem(wname, "chain", docs, nil)
		mustErr(reg.Register(w))
		mustErr(ont.RegisterWrapper("chain", w.Signature()))
		mustErr(ont.DefineMapping(bdi.Mapping{
			Wrapper: wname,
			Subgraph: []rdf.Triple{
				rdf.T(concept(i-1), rt, bdi.ClassConcept),
				rdf.T(concept(i-1), bdi.PropHasFeature, ident(i-1)),
				rdf.T(concept(i-1), prop, concept(i)),
				rdf.T(concept(i), rt, bdi.ClassConcept),
				rdf.T(concept(i), bdi.PropHasFeature, ident(i)),
			},
			SameAs: map[string]rdf.Term{
				fmt.Sprintf("a%d", i-1): ident(i - 1),
				fmt.Sprintf("a%d", i):   ident(i),
			},
		}))
	}
	return ont, reg, walk
}

// SyntheticPlayers generates n player rows in the w1 signature; team ids
// range over n/10+1 teams. Used by the S3 execution sweep.
func SyntheticPlayers(n int) []schema.Doc {
	docs := make([]schema.Doc, n)
	for i := range docs {
		docs[i] = schema.Doc{
			"id":     relalg.Int(int64(i)),
			"pName":  relalg.String(fmt.Sprintf("Player %d", i)),
			"height": relalg.Float(160 + float64(i%40)),
			"weight": relalg.Int(int64(140 + i%80)),
			"score":  relalg.Int(int64(50 + i%50)),
			"foot":   relalg.String([]string{"left", "right"}[i%2]),
			"teamId": relalg.Int(int64(i % (n/10 + 1))),
		}
	}
	return docs
}

// SyntheticTeams generates n team rows in the w2 signature.
func SyntheticTeams(n int) []schema.Doc {
	if n <= 0 {
		n = 1
	}
	docs := make([]schema.Doc, n)
	for i := range docs {
		docs[i] = schema.Doc{
			"id":        relalg.Int(int64(i)),
			"name":      relalg.String(fmt.Sprintf("Team %d", i)),
			"shortName": relalg.String(fmt.Sprintf("T%d", i)),
		}
	}
	return docs
}

func mustErr(err error) {
	if err != nil {
		panic(err)
	}
}
