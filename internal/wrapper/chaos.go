package wrapper

import (
	"context"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"mdm/internal/relalg"
)

// ErrInjected is the default failure a Chaos wrapper injects. It is a
// 503 StatusError, so the federation retry classifier treats it as a
// transient, retryable source failure — the common production flavour.
var ErrInjected error = &StatusError{URL: "chaos://injected", Code: http.StatusServiceUnavailable}

// ChaosStep is one scripted Fetch outcome of a Chaos wrapper.
type ChaosStep struct {
	// Err, when non-nil, fails the fetch with this error. Nil means the
	// fetch succeeds (delegating to the wrapped wrapper).
	Err error
	// Latency is added before the outcome (on top of the wrapper-wide
	// latency), honoring context cancellation during the wait.
	Latency time.Duration
}

// Chaos wraps a Wrapper with deterministic fault injection for tests
// and soak harnesses: scripted failure sequences, a permanent outage
// switch, seeded random flakes and latency injection. Signature probes
// (CurrentSignature) pass through untouched — chaos applies to Fetch
// only, mimicking a source whose data endpoint flaps while its schema
// stays discoverable.
//
// Outcome precedence per Fetch: the next scripted step if any remain,
// else the Down error if set, else a seeded flake draw. Given the same
// seed and the same sequence of Fetch calls, the injected outcomes are
// identical across runs; concurrent fetches serialize their draws under
// one lock, so determinism holds per call order (which a deterministic
// harness controls).
//
// Configuration methods return the receiver for chaining and are safe
// to call concurrently with Fetch (a mid-test Heal is a valid event).
type Chaos struct {
	// Wrapper is the wrapped inner wrapper; Name/Columns/Signature/
	// SourceID/CurrentSignature delegate to it.
	Wrapper

	mu        sync.Mutex
	rng       *rand.Rand
	script    []ChaosStep
	down      error
	flakeRate float64
	flakeErr  error
	latency   time.Duration
	fetches   int
	failures  int
}

// NewChaos wraps inner with a fault injector seeded for deterministic
// flake draws.
func NewChaos(inner Wrapper, seed int64) *Chaos {
	return &Chaos{Wrapper: inner, rng: rand.New(rand.NewSource(seed)), flakeErr: ErrInjected}
}

// Script appends scripted steps, consumed one per Fetch before any
// other fault source is consulted.
func (c *Chaos) Script(steps ...ChaosStep) *Chaos {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.script = append(c.script, steps...)
	return c
}

// FailNext scripts the next n fetches to fail with err (ErrInjected
// when err is nil).
func (c *Chaos) FailNext(n int, err error) *Chaos {
	if err == nil {
		err = ErrInjected
	}
	steps := make([]ChaosStep, n)
	for i := range steps {
		steps[i] = ChaosStep{Err: err}
	}
	return c.Script(steps...)
}

// Down makes every unscripted fetch fail with err (ErrInjected when
// nil) until Heal — a source outage.
func (c *Chaos) Down(err error) *Chaos {
	if err == nil {
		err = ErrInjected
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.down = err
	return c
}

// Heal clears the outage and any unconsumed script; flake injection
// keeps its configuration.
func (c *Chaos) Heal() *Chaos {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.down = nil
	c.script = nil
	return c
}

// Flake makes each unscripted, non-down fetch fail with probability
// rate (drawn from the seeded generator) using err (ErrInjected when
// nil).
func (c *Chaos) Flake(rate float64, err error) *Chaos {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flakeRate = rate
	if err != nil {
		c.flakeErr = err
	}
	return c
}

// WithLatency injects d of latency into every fetch, before the
// outcome.
func (c *Chaos) WithLatency(d time.Duration) *Chaos {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.latency = d
	return c
}

// Fetches returns how many Fetch calls the wrapper has seen — the
// instrument for breaker fail-fast assertions (an open breaker must
// stop this counter).
func (c *Chaos) Fetches() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fetches
}

// Failures returns how many fetches were failed by injection.
func (c *Chaos) Failures() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failures
}

// Fetch implements relalg.RowSource with the configured faults.
func (c *Chaos) Fetch(ctx context.Context) (*relalg.Relation, error) {
	c.mu.Lock()
	c.fetches++
	var injected error
	latency := c.latency
	switch {
	case len(c.script) > 0:
		step := c.script[0]
		c.script = c.script[1:]
		injected = step.Err
		latency += step.Latency
	case c.down != nil:
		injected = c.down
	case c.flakeRate > 0 && c.rng.Float64() < c.flakeRate:
		injected = c.flakeErr
	}
	if injected != nil {
		c.failures++
	}
	c.mu.Unlock()

	if latency > 0 {
		t := time.NewTimer(latency)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if injected != nil {
		return nil, injected
	}
	return c.Wrapper.Fetch(ctx)
}
