package wrapper

import (
	"context"
	"errors"
	"testing"
	"time"

	"mdm/internal/relalg"
	"mdm/internal/schema"
)

func chaosInner(t *testing.T) Wrapper {
	t.Helper()
	return NewMem("w", "src", []schema.Doc{{"id": relalg.Int(1)}}, nil)
}

// TestChaosScriptPrecedence: scripted steps consume first, then the
// outage switch, then flakes; Heal clears script and outage but keeps
// the flake configuration.
func TestChaosScriptPrecedence(t *testing.T) {
	ctx := context.Background()
	boom := errors.New("boom")
	c := NewChaos(chaosInner(t), 1).
		Script(ChaosStep{Err: boom}, ChaosStep{}).
		Down(nil).
		Flake(1.0, nil)

	if _, err := c.Fetch(ctx); !errors.Is(err, boom) {
		t.Fatalf("fetch 1: err = %v, want scripted boom", err)
	}
	// Second scripted step is a success, beating both Down and Flake.
	if rel, err := c.Fetch(ctx); err != nil || rel.Len() != 1 {
		t.Fatalf("fetch 2: rel = %v, err = %v, want scripted success", rel, err)
	}
	// Script exhausted: the outage takes over.
	if _, err := c.Fetch(ctx); !errors.Is(err, ErrInjected) {
		t.Fatalf("fetch 3: err = %v, want ErrInjected (down)", err)
	}
	// Heal clears the outage; rate-1.0 flakes still fire.
	c.Heal()
	if _, err := c.Fetch(ctx); !errors.Is(err, ErrInjected) {
		t.Fatalf("fetch 4: err = %v, want ErrInjected (flake survives Heal)", err)
	}
	if c.Fetches() != 4 || c.Failures() != 3 {
		t.Fatalf("counters = %d fetches / %d failures, want 4 / 3", c.Fetches(), c.Failures())
	}
}

// TestChaosDeterministicBySeed: the same seed yields the same flake
// outcome sequence; a different seed (eventually) diverges.
func TestChaosDeterministicBySeed(t *testing.T) {
	ctx := context.Background()
	draw := func(seed int64) []bool {
		c := NewChaos(chaosInner(t), seed).Flake(0.5, nil)
		outs := make([]bool, 64)
		for i := range outs {
			_, err := c.Fetch(ctx)
			outs[i] = err != nil
		}
		return outs
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at fetch %d", i)
		}
	}
	other := draw(43)
	same := true
	for i := range a {
		if a[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical 64-draw sequences")
	}
}

// TestChaosLatencyHonorsCancel: an injected-latency fetch aborts with
// the context error when canceled mid-wait.
func TestChaosLatencyHonorsCancel(t *testing.T) {
	c := NewChaos(chaosInner(t), 1).WithLatency(time.Minute)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Fetch(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("fetch blocked %v despite cancellation", elapsed)
	}
}

// TestChaosPassThrough: a quiet Chaos is transparent — data, name and
// signature probes all reach the inner wrapper.
func TestChaosPassThrough(t *testing.T) {
	inner := chaosInner(t)
	c := NewChaos(inner, 7)
	if c.Name() != inner.Name() {
		t.Fatalf("Name = %q, want %q", c.Name(), inner.Name())
	}
	rel, err := c.Fetch(context.Background())
	if err != nil || rel.Len() != 1 {
		t.Fatalf("rel = %v, err = %v", rel, err)
	}
	if c.Fetches() != 1 || c.Failures() != 0 {
		t.Fatalf("counters = %d / %d, want 1 / 0", c.Fetches(), c.Failures())
	}
}
