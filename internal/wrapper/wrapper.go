// Package wrapper implements the wrapper side of the mediator/wrapper
// architecture MDM builds on (paper §1, §2.2). A wrapper is the access
// mechanism for one schema version of one data source — "an API request
// or a database query" — exposing a flat relation with a fixed signature
// w(a1..an).
//
// Wrappers implement relalg.RowSource, so rewritten queries execute
// directly over them. The package provides HTTP-backed wrappers (REST
// APIs delivering JSON/XML/CSV), in-memory wrappers, file wrappers and
// function wrappers, plus a Registry that groups wrappers by data
// source, mirroring the S:DataSource 1—* S:Wrapper metamodel.
package wrapper

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"mdm/internal/relalg"
	"mdm/internal/schema"
)

// Wrapper is a named, signed row source attached to a data source.
type Wrapper interface {
	relalg.RowSource
	// Signature returns the wrapper's declared signature w(a1..an).
	Signature() schema.Signature
	// SourceID identifies the owning data source.
	SourceID() string
	// CurrentSignature re-extracts the signature from the source's
	// current payload; the release manager diffs it against Signature
	// to detect schema evolution.
	CurrentSignature(ctx context.Context) (schema.Signature, error)
}

// base carries the common wrapper state.
type base struct {
	name     string
	sourceID string
	sig      schema.Signature
}

func (b *base) Name() string                { return b.name }
func (b *base) SourceID() string            { return b.sourceID }
func (b *base) Signature() schema.Signature { return b.sig }
func (b *base) Columns() []string           { return b.sig.AttributeNames() }

// toRelation converts docs to the declared signature, applying renames
// first. Fields absent from the signature are dropped; signed attributes
// absent from a doc become NULL.
func toRelation(sig schema.Signature, renames map[string]string, docs []schema.Doc) *relalg.Relation {
	if len(renames) > 0 {
		renamed := make([]schema.Doc, len(docs))
		for i, d := range docs {
			nd := make(schema.Doc, len(d))
			for k, v := range d {
				if to, ok := renames[k]; ok {
					k = to
				}
				nd[k] = v
			}
			renamed[i] = nd
		}
		docs = renamed
	}
	return schema.ToRelation(docs, sig.Attributes)
}

// --- HTTP wrapper ---

// HTTP is a wrapper over a REST endpoint. The wrapper definition (which
// URL, which renames) is the steward-provided "query contained in the
// wrapper" from the paper: it may rename payload fields (foot for
// preferred_foot) and therefore decouples attribute names from raw
// payload keys.
type HTTP struct {
	base
	url     string
	format  schema.Format
	renames map[string]string
	client  *http.Client
}

// HTTPOption configures an HTTP wrapper.
type HTTPOption func(*HTTP)

// WithFormat forces the payload format instead of auto-detection.
func WithFormat(f schema.Format) HTTPOption { return func(w *HTTP) { w.format = f } }

// WithRename maps a flattened payload field to a signature attribute.
func WithRename(from, to string) HTTPOption {
	return func(w *HTTP) { w.renames[from] = to }
}

// WithClient sets the HTTP client (timeouts, test transports).
func WithClient(c *http.Client) HTTPOption { return func(w *HTTP) { w.client = c } }

// NewHTTP registers an HTTP wrapper by fetching a sample payload and
// extracting its signature (the automated part of paper §2.2). The
// returned wrapper's signature reflects the payload after renames.
func NewHTTP(ctx context.Context, name, sourceID, url string, opts ...HTTPOption) (*HTTP, error) {
	w := &HTTP{
		base:    base{name: name, sourceID: sourceID},
		url:     url,
		renames: map[string]string{},
		client:  &http.Client{Timeout: 30 * time.Second},
	}
	for _, o := range opts {
		o(w)
	}
	sig, err := w.CurrentSignature(ctx)
	if err != nil {
		return nil, fmt.Errorf("wrapper %s: extract signature: %w", name, err)
	}
	w.sig = sig
	return w, nil
}

// maxPayloadBytes caps how much of a source payload a wrapper reads. It
// is a var only so tests can lower it; treat it as a constant.
var maxPayloadBytes = int64(64 << 20)

// ErrPayloadTooLarge reports a source payload exceeding the wrapper
// read cap. It is returned instead of silently flattening a truncated
// (and therefore likely corrupt) document.
var ErrPayloadTooLarge = errors.New("payload exceeds wrapper read cap")

// StatusError reports a non-200 response from a wrapped endpoint. It is
// a typed error (rather than a formatted string) so callers — the
// federation retry classifier in particular — can distinguish a
// server-side failure worth retrying (5xx, 429) from a client-side
// request error that will fail identically on every attempt (4xx).
type StatusError struct {
	// URL is the fetched endpoint.
	URL string
	// Code is the HTTP status code of the response.
	Code int
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("GET %s: status %d", e.URL, e.Code)
}

// fetchDocs GETs the endpoint and flattens the payload. The status code
// is checked before the body is read — an error response's body is
// diagnostics, not data — and payloads over the read cap fail with
// ErrPayloadTooLarge rather than being truncated.
func (w *HTTP) fetchDocs(ctx context.Context) ([]schema.Doc, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, &StatusError{URL: w.url, Code: resp.StatusCode}
	}
	// Read one byte past the cap so an exactly-cap-sized payload is
	// distinguishable from an oversized one.
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxPayloadBytes+1))
	if err != nil {
		return nil, err
	}
	if int64(len(body)) > maxPayloadBytes {
		return nil, fmt.Errorf("GET %s: %w (%d byte cap)", w.url, ErrPayloadTooLarge, maxPayloadBytes)
	}
	format := w.format
	if format == "" {
		format = schema.DetectFormat(resp.Header.Get("Content-Type"), body)
	}
	return schema.Flatten(format, body)
}

// CurrentSignature implements Wrapper.
func (w *HTTP) CurrentSignature(ctx context.Context) (schema.Signature, error) {
	docs, err := w.fetchDocs(ctx)
	if err != nil {
		return schema.Signature{}, err
	}
	renamed := toRelationDocs(w.renames, docs)
	return schema.Signature{Wrapper: w.name, Attributes: schema.Infer(renamed)}, nil
}

func toRelationDocs(renames map[string]string, docs []schema.Doc) []schema.Doc {
	if len(renames) == 0 {
		return docs
	}
	out := make([]schema.Doc, len(docs))
	for i, d := range docs {
		nd := make(schema.Doc, len(d))
		for k, v := range d {
			if to, ok := renames[k]; ok {
				k = to
			}
			nd[k] = v
		}
		out[i] = nd
	}
	return out
}

// Fetch implements relalg.RowSource.
func (w *HTTP) Fetch(ctx context.Context) (*relalg.Relation, error) {
	docs, err := w.fetchDocs(ctx)
	if err != nil {
		return nil, fmt.Errorf("wrapper %s: %w", w.name, err)
	}
	return toRelation(w.sig, w.renames, docs), nil
}

// --- In-memory wrapper ---

// Mem is a wrapper over in-memory documents; used in tests, examples and
// the paper's demo fixtures.
type Mem struct {
	base
	mu   sync.RWMutex
	docs []schema.Doc
}

// NewMem builds an in-memory wrapper. The signature is inferred from the
// initial documents unless attrs is non-nil.
func NewMem(name, sourceID string, docs []schema.Doc, attrs []schema.Attribute) *Mem {
	if attrs == nil {
		attrs = schema.Infer(docs)
	}
	return &Mem{
		base: base{name: name, sourceID: sourceID, sig: schema.Signature{Wrapper: name, Attributes: attrs}},
		docs: docs,
	}
}

// Fetch implements relalg.RowSource.
func (w *Mem) Fetch(context.Context) (*relalg.Relation, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return schema.ToRelation(w.docs, w.sig.Attributes), nil
}

// CurrentSignature implements Wrapper.
func (w *Mem) CurrentSignature(context.Context) (schema.Signature, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return schema.Signature{Wrapper: w.name, Attributes: schema.Infer(w.docs)}, nil
}

// SetDocs replaces the wrapper's documents (simulating source-side data
// or schema change).
func (w *Mem) SetDocs(docs []schema.Doc) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.docs = docs
}

// --- File wrapper ---

// File is a wrapper over a local file (CSV/JSON/XML exports).
type File struct {
	base
	path   string
	format schema.Format
}

// NewFile builds a file wrapper, extracting the signature from the
// file's current contents.
func NewFile(name, sourceID, path string, format schema.Format) (*File, error) {
	w := &File{base: base{name: name, sourceID: sourceID}, path: path, format: format}
	sig, err := w.CurrentSignature(context.Background())
	if err != nil {
		return nil, fmt.Errorf("wrapper %s: extract signature: %w", name, err)
	}
	w.sig = sig
	return w, nil
}

func (w *File) readDocs() ([]schema.Doc, error) {
	data, err := os.ReadFile(w.path)
	if err != nil {
		return nil, err
	}
	format := w.format
	if format == "" {
		format = schema.DetectFormat("", data)
	}
	return schema.Flatten(format, data)
}

// Fetch implements relalg.RowSource.
func (w *File) Fetch(context.Context) (*relalg.Relation, error) {
	docs, err := w.readDocs()
	if err != nil {
		return nil, fmt.Errorf("wrapper %s: %w", w.name, err)
	}
	return schema.ToRelation(docs, w.sig.Attributes), nil
}

// CurrentSignature implements Wrapper.
func (w *File) CurrentSignature(context.Context) (schema.Signature, error) {
	docs, err := w.readDocs()
	if err != nil {
		return schema.Signature{}, err
	}
	return schema.Signature{Wrapper: w.name, Attributes: schema.Infer(docs)}, nil
}

// --- Function wrapper ---

// Func adapts an arbitrary Go function as a wrapper (Spark jobs, Mongo
// queries and other steward-defined access mechanisms from the paper are
// all "some code that yields rows").
type Func struct {
	base
	fn func(ctx context.Context) ([]schema.Doc, error)
}

// NewFunc builds a function wrapper with a declared signature.
func NewFunc(name, sourceID string, attrs []schema.Attribute, fn func(ctx context.Context) ([]schema.Doc, error)) *Func {
	return &Func{
		base: base{name: name, sourceID: sourceID, sig: schema.Signature{Wrapper: name, Attributes: attrs}},
		fn:   fn,
	}
}

// Fetch implements relalg.RowSource.
func (w *Func) Fetch(ctx context.Context) (*relalg.Relation, error) {
	docs, err := w.fn(ctx)
	if err != nil {
		return nil, fmt.Errorf("wrapper %s: %w", w.name, err)
	}
	return schema.ToRelation(docs, w.sig.Attributes), nil
}

// CurrentSignature implements Wrapper.
func (w *Func) CurrentSignature(ctx context.Context) (schema.Signature, error) {
	docs, err := w.fn(ctx)
	if err != nil {
		return schema.Signature{}, err
	}
	return schema.Signature{Wrapper: w.name, Attributes: schema.Infer(docs)}, nil
}

// --- Registry ---

// Registry indexes wrappers by name and groups them by data source. It
// is the runtime companion of the source graph: one S:DataSource node
// per source ID, one S:Wrapper node per registered wrapper.
type Registry struct {
	mu       sync.RWMutex
	byName   map[string]Wrapper
	bySource map[string][]string // source ID -> wrapper names in order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]Wrapper{}, bySource: map[string][]string{}}
}

// Register adds a wrapper; wrapper names are globally unique.
func (r *Registry) Register(w Wrapper) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[w.Name()]; dup {
		return fmt.Errorf("wrapper: duplicate wrapper name %q", w.Name())
	}
	r.byName[w.Name()] = w
	r.bySource[w.SourceID()] = append(r.bySource[w.SourceID()], w.Name())
	return nil
}

// Get returns a wrapper by name.
func (r *Registry) Get(name string) (Wrapper, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	w, ok := r.byName[name]
	return w, ok
}

// Remove deletes a wrapper, reporting whether it existed.
func (r *Registry) Remove(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.byName[name]
	if !ok {
		return false
	}
	delete(r.byName, name)
	names := r.bySource[w.SourceID()]
	for i, n := range names {
		if n == name {
			r.bySource[w.SourceID()] = append(names[:i], names[i+1:]...)
			break
		}
	}
	return true
}

// BySource returns the wrappers registered for a data source, in
// registration order (i.e. release order).
func (r *Registry) BySource(sourceID string) []Wrapper {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := r.bySource[sourceID]
	out := make([]Wrapper, 0, len(names))
	for _, n := range names {
		out = append(out, r.byName[n])
	}
	return out
}

// Sources returns all known data source IDs, sorted.
func (r *Registry) Sources() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.bySource))
	for s := range r.bySource {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Names returns all wrapper names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.byName))
	for n := range r.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of registered wrappers.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byName)
}
