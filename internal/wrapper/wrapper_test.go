package wrapper

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mdm/internal/relalg"
	"mdm/internal/schema"
)

func playerDocs() []schema.Doc {
	return []schema.Doc{
		{"id": relalg.Int(6176), "pName": relalg.String("Lionel Messi"), "teamId": relalg.Int(25)},
		{"id": relalg.Int(8123), "pName": relalg.String("Zlatan Ibrahimovic"), "teamId": relalg.Int(31)},
	}
}

func TestMemWrapperBasics(t *testing.T) {
	w := NewMem("w1", "players-api", playerDocs(), nil)
	if w.Name() != "w1" || w.SourceID() != "players-api" {
		t.Errorf("identity = %s/%s", w.Name(), w.SourceID())
	}
	sig := w.Signature()
	if len(sig.Attributes) != 3 {
		t.Fatalf("signature = %s", sig)
	}
	rel, err := w.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 || len(rel.Cols) != 3 {
		t.Fatalf("fetched %dx%d", rel.Len(), len(rel.Cols))
	}
	cur, err := w.CurrentSignature(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cur.String() != sig.String() {
		t.Errorf("current sig %s != declared %s", cur, sig)
	}
}

func TestMemWrapperSetDocsSimulatesEvolution(t *testing.T) {
	w := NewMem("w1", "players-api", playerDocs(), nil)
	// New version renames pName -> fullName.
	w.SetDocs([]schema.Doc{
		{"id": relalg.Int(1), "fullName": relalg.String("X"), "teamId": relalg.Int(2)},
	})
	cur, err := w.CurrentSignature(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	names := cur.AttributeNames()
	found := false
	for _, n := range names {
		if n == "fullName" {
			found = true
		}
	}
	if !found {
		t.Errorf("evolved signature = %v", names)
	}
	// Declared signature is immutable: Fetch fills missing pName as NULL.
	rel, err := w.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	pi := rel.ColIndex("pName")
	if pi < 0 || !rel.Rows[0][pi].IsNull() {
		t.Errorf("declared attribute should surface as NULL after drift: %v", rel.Rows)
	}
}

func TestHTTPWrapperJSON(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`[
			{"id":6176,"name":"Lionel Messi","preferred_foot":"left","team_id":25},
			{"id":8123,"name":"Zlatan Ibrahimovic","preferred_foot":"right","team_id":31}
		]`))
	}))
	defer srv.Close()

	w, err := NewHTTP(context.Background(), "w1", "players-api", srv.URL,
		WithRename("preferred_foot", "foot"),
		WithRename("name", "pName"),
		WithRename("team_id", "teamId"))
	if err != nil {
		t.Fatal(err)
	}
	cols := w.Columns()
	want := map[string]bool{"id": true, "pName": true, "foot": true, "teamId": true}
	for _, c := range cols {
		if !want[c] {
			t.Errorf("unexpected column %q", c)
		}
	}
	rel, err := w.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("rows = %d", rel.Len())
	}
	fi := rel.ColIndex("foot")
	if fi < 0 || rel.Rows[0][fi] != relalg.String("left") {
		t.Errorf("rename not applied: %v", rel.Rows[0])
	}
}

func TestHTTPWrapperXML(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/xml")
		w.Write([]byte(`<teams>
  <team><id>25</id><name>FC Barcelona</name><shortName>FCB</shortName></team>
  <team><id>31</id><name>Manchester United</name><shortName>MU</shortName></team>
</teams>`))
	}))
	defer srv.Close()

	w, err := NewHTTP(context.Background(), "w2", "teams-api", srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := w.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 || len(rel.Cols) != 3 {
		t.Fatalf("xml fetch = %dx%d", rel.Len(), len(rel.Cols))
	}
}

func TestHTTPWrapperErrorStatus(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "gone", http.StatusGone)
	}))
	defer srv.Close()
	if _, err := NewHTTP(context.Background(), "w1", "s", srv.URL); err == nil {
		t.Error("registration against failing endpoint should error")
	}
}

func TestHTTPWrapperFetchFailsAfterServerDies(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`[{"a":1}]`))
	}))
	w, err := NewHTTP(context.Background(), "w1", "s", srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := w.Fetch(context.Background()); err == nil {
		t.Error("fetch against dead server should error")
	}
}

func TestFileWrapperCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "leagues.csv")
	os.WriteFile(path, []byte("id,league,countryId\n1,La Liga,34\n2,Premier League,826\n"), 0o644)
	w, err := NewFile("w3", "leagues-api", path, schema.FormatCSV)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := w.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("rows = %d", rel.Len())
	}
	if w.Signature().String() == "" {
		t.Error("empty signature")
	}
	// Missing file.
	if _, err := NewFile("w4", "s", filepath.Join(dir, "absent.csv"), schema.FormatCSV); err == nil {
		t.Error("missing file accepted")
	}
}

func TestFileWrapperFormatAutodetect(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data")
	os.WriteFile(path, []byte(`[{"x":1}]`), 0o644)
	w, err := NewFile("w5", "s", path, "")
	if err != nil {
		t.Fatal(err)
	}
	rel, err := w.Fetch(context.Background())
	if err != nil || rel.Len() != 1 {
		t.Errorf("autodetect fetch = %v, %v", rel, err)
	}
}

func TestFuncWrapper(t *testing.T) {
	attrs := []schema.Attribute{{Name: "id", Type: relalg.TypeInt}, {Name: "v", Type: relalg.TypeString}}
	calls := 0
	w := NewFunc("wf", "src", attrs, func(ctx context.Context) ([]schema.Doc, error) {
		calls++
		return []schema.Doc{{"id": relalg.Int(1), "v": relalg.String("a")}}, nil
	})
	rel, err := w.Fetch(context.Background())
	if err != nil || rel.Len() != 1 {
		t.Fatalf("func fetch = %v, %v", rel, err)
	}
	if _, err := w.CurrentSignature(context.Background()); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("calls = %d", calls)
	}
	failing := NewFunc("wf2", "src", attrs, func(ctx context.Context) ([]schema.Doc, error) {
		return nil, errors.New("backend down")
	})
	if _, err := failing.Fetch(context.Background()); err == nil {
		t.Error("func error swallowed")
	}
	if _, err := failing.CurrentSignature(context.Background()); err == nil {
		t.Error("func error swallowed in CurrentSignature")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	w1 := NewMem("w1", "players-api", playerDocs(), nil)
	w2 := NewMem("w2", "teams-api", nil, []schema.Attribute{{Name: "id", Type: relalg.TypeInt}})
	w1b := NewMem("w1b", "players-api", playerDocs(), nil)

	for _, w := range []Wrapper{w1, w2, w1b} {
		if err := r.Register(w); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Register(NewMem("w1", "other", nil, []schema.Attribute{{Name: "x"}})); err == nil {
		t.Error("duplicate name accepted")
	}
	if got, ok := r.Get("w2"); !ok || got.Name() != "w2" {
		t.Error("Get failed")
	}
	if _, ok := r.Get("nope"); ok {
		t.Error("Get returned missing wrapper")
	}
	ws := r.BySource("players-api")
	if len(ws) != 2 || ws[0].Name() != "w1" || ws[1].Name() != "w1b" {
		t.Errorf("BySource = %v", ws)
	}
	if src := r.Sources(); len(src) != 2 || src[0] != "players-api" {
		t.Errorf("Sources = %v", src)
	}
	if names := r.Names(); len(names) != 3 || names[0] != "w1" {
		t.Errorf("Names = %v", names)
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d", r.Len())
	}
	if !r.Remove("w1b") {
		t.Error("Remove = false")
	}
	if r.Remove("w1b") {
		t.Error("double Remove = true")
	}
	if ws := r.BySource("players-api"); len(ws) != 1 {
		t.Errorf("BySource after remove = %v", ws)
	}
}

func TestWrapperIsRowSource(t *testing.T) {
	// Wrappers must plug directly into relalg plans.
	var _ relalg.RowSource = NewMem("w", "s", nil, []schema.Attribute{{Name: "id"}})
	w := NewMem("w1", "players-api", playerDocs(), nil)
	plan := relalg.NewProject(relalg.NewScan(w), "pName")
	rel, err := plan.Execute(context.Background())
	if err != nil || rel.Len() != 2 {
		t.Fatalf("plan over wrapper = %v, %v", rel, err)
	}
}

// TestHTTPStatusCheckedBeforeBody: a non-200 response fails with the
// status code — its body is never flattened as data, however large.
func TestHTTPStatusCheckedBeforeBody(t *testing.T) {
	healthy := atomic.Bool{}
	healthy.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			// A huge error body must not trip the payload cap nor be
			// parsed; the status decides first.
			w.Write(bytes.Repeat([]byte("x"), 1<<20))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`[{"id":1}]`))
	}))
	defer srv.Close()

	w, err := NewHTTP(context.Background(), "w", "s", srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	healthy.Store(false)
	_, err = w.Fetch(context.Background())
	if err == nil || !strings.Contains(err.Error(), "status 500") {
		t.Fatalf("err = %v, want status 500", err)
	}
	if errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("status error misreported as payload cap: %v", err)
	}
}

// TestHTTPPayloadCap: payloads over the read cap fail with a distinct
// error instead of being silently truncated into a corrupt document.
func TestHTTPPayloadCap(t *testing.T) {
	prev := maxPayloadBytes
	maxPayloadBytes = 64
	t.Cleanup(func() { maxPayloadBytes = prev })

	big := atomic.Bool{}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if big.Load() {
			fmt.Fprintf(w, `[{"id":1,"pad":%q}]`, strings.Repeat("x", 200))
			return
		}
		w.Write([]byte(`[{"id":1}]`))
	}))
	defer srv.Close()

	w, err := NewHTTP(context.Background(), "w", "s", srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	// Under the cap: still fine.
	if _, err := w.Fetch(context.Background()); err != nil {
		t.Fatalf("fetch under cap: %v", err)
	}
	big.Store(true)
	_, err = w.Fetch(context.Background())
	if !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("err = %v, want ErrPayloadTooLarge", err)
	}
	// Signature drift probes fail the same way, not with a parse error.
	if _, err := w.CurrentSignature(context.Background()); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("CurrentSignature err = %v, want ErrPayloadTooLarge", err)
	}
}

// TestHTTPFetchCtxCancel: canceling the context mid-fetch surfaces
// context.Canceled (the REST layer maps it to 499).
func TestHTTPFetchCtxCancel(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	first := atomic.Bool{}
	first.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if first.CompareAndSwap(true, false) { // signature probe
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`[{"id":1}]`))
			return
		}
		select { // hang until the client goes away
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()

	w, err := NewHTTP(context.Background(), "w", "s", srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	if _, err := w.Fetch(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
}
