// Package mdm is a Go implementation of MDM, the Metadata Management
// System for governing evolution in Big Data ecosystems (Nadal, Abelló,
// Romero, Vansummeren, Vassiliadis — EDBT 2018).
//
// MDM assists two roles across the Big Data integration lifecycle:
//
//   - DATA STEWARDS define a global graph of domain concepts and
//     features, register data sources and wrappers (one per schema
//     version of a source), and link wrappers to the global graph with
//     local-as-view (LAV) mappings;
//   - DATA ANALYSTS pose ontology-mediated queries as walks over the
//     global graph; a rewriting algorithm resolves the LAV mappings into
//     a union of conjunctive queries over the wrappers — transparently
//     spanning all registered schema versions of every source.
//
// A minimal end-to-end session:
//
//	sys := mdm.New()
//	sys.BindPrefix("ex", "http://ex.org/")
//	sys.AddConcept("ex:Player", "Player")
//	sys.AddFeature("ex:playerId", "playerId")
//	sys.AttachFeature("ex:Player", "ex:playerId")
//	sys.MarkIdentifier("ex:playerId")
//	... register sources, wrappers and mappings ...
//	walk := mdm.NewWalk().Select(sys.IRI("ex:Player"), sys.IRI("ex:playerId"))
//	rel, res, err := sys.Query(ctx, walk)
//
// See examples/ for complete programs, DESIGN.md for the architecture
// and EXPERIMENTS.md for the paper-artifact reproductions.
package mdm

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"mdm/internal/bdi"
	"mdm/internal/federate"
	"mdm/internal/obs"
	"mdm/internal/rdf"
	"mdm/internal/rdf/turtle"
	"mdm/internal/relalg"
	"mdm/internal/release"
	"mdm/internal/rewrite"
	"mdm/internal/sparql"
	"mdm/internal/store"
	"mdm/internal/tdb"
	"mdm/internal/wrapper"
)

// Re-exported building blocks so most users only import mdm.
type (
	// Walk is an ontology-mediated query: a subgraph of the global graph
	// plus the features to project.
	Walk = rewrite.Walk
	// RewriteResult carries the plan, SPARQL text and per-CQ algebra.
	RewriteResult = rewrite.Result
	// Relation is a materialized query answer.
	Relation = relalg.Relation
	// Mapping is a LAV mapping: a wrapper's global subgraph + sameAs links.
	Mapping = bdi.Mapping
	// Release is one release-log entry.
	Release = release.Release
	// Change is one detected schema change.
	Change = release.Change
	// Violation is one integrity-constraint breach.
	Violation = bdi.Violation
	// Wrapper is the source-access interface.
	Wrapper = wrapper.Wrapper
	// WalkCursor streams a federated walk answer row by row.
	WalkCursor = federate.Cursor
	// QueryOpts parameterizes QueryRun (page bounds + degradation mode).
	QueryOpts = federate.RunOpts
	// SourceError annotates one source missing from a partial result.
	SourceError = federate.SourceError
	// Term is an RDF term.
	Term = rdf.Term
	// Triple is an RDF triple.
	Triple = rdf.Triple
)

// NewWalk starts an empty walk.
func NewWalk() *Walk { return rewrite.NewWalk() }

// T builds a triple (for mapping subgraphs).
func T(s, p, o Term) Triple { return rdf.T(s, p, o) }

// System is an MDM instance: ontology, wrapper registry, release log and
// metadata store behind one facade.
type System struct {
	ont      *bdi.Ontology
	reg      *wrapper.Registry
	releases *release.Manager
	meta     *store.Store
	rewriter *rewrite.Rewriter
	fed      *federate.Engine
	// tdbStore is non-nil for persistent systems created with Open.
	tdbStore *tdb.Store
}

// New creates an in-memory MDM system.
func New() *System {
	ont := bdi.New()
	reg := wrapper.NewRegistry()
	meta, _ := store.Open("") // in-memory store never fails
	return &System{
		ont:      ont,
		reg:      reg,
		releases: release.NewManager(ont, reg),
		meta:     meta,
		rewriter: rewrite.New(ont, reg),
		fed:      federate.NewEngine(),
	}
}

// StoreOptions configures the persistent storage engine behind OpenWith:
// WAL fsync durability (Sync/SyncInterval) and background compaction
// (CompactInterval/CompactWALThreshold). The zero value matches Open.
type StoreOptions = tdb.Options

// Open loads (or creates) a persistent MDM system rooted at dir with
// default storage options; see OpenWith.
func Open(dir string) (*System, error) {
	return OpenWith(dir, StoreOptions{})
}

// OpenWith loads (or creates) a persistent MDM system rooted at dir.
// The ontology dataset lives in a tdb segment store (manifest-listed
// immutable segments plus a write-ahead-log tail, both replayed at
// open); system metadata lives in a JSON document store next to it.
// When opts.CompactInterval > 0 a background compactor keeps the store
// checkpointed and its dictionary garbage-collected; the compactor
// swaps the live dataset atomically under the ontology's write lock, so
// facade reads and writes never observe a half-migrated dataset. Call
// Checkpoint to force a durability point and Close when done. Wrappers
// are live code and must be re-registered after reopen.
//
// A dir/ontology.trig file written by pre-segment mdmd deployments is
// migrated into the store on first open (and renamed to
// ontology.trig.migrated).
func OpenWith(dir string, opts StoreOptions) (*System, error) {
	tdbOpts := opts
	// The background compactor must not start before the ontology's swap
	// hook is wired, or an early compaction could swap the dataset
	// without re-pointing the facade; started manually below.
	tdbOpts.CompactInterval = 0
	ts, err := tdb.OpenWith(filepath.Join(dir, "ontology"), tdbOpts)
	if err != nil {
		return nil, err
	}
	if err := migrateLegacyTriG(dir, ts); err != nil {
		ts.Close()
		return nil, err
	}
	meta, err := store.Open(filepath.Join(dir, "meta"))
	if err != nil {
		ts.Close()
		return nil, err
	}
	ont := bdi.FromDataset(ts.Dataset())
	ts.SetSwapHook(ont.Rebind)
	if opts.CompactInterval > 0 {
		ts.StartAutoCompact(opts.CompactInterval, opts.CompactWALThreshold)
	}
	reg := wrapper.NewRegistry()
	return &System{
		ont:      ont,
		reg:      reg,
		releases: release.NewManager(ont, reg),
		meta:     meta,
		rewriter: rewrite.New(ont, reg),
		fed:      federate.NewEngine(),
		tdbStore: ts,
	}, nil
}

// migrateLegacyTriG imports a pre-segment mdmd data directory: a single
// dir/ontology.trig TriG export. The parsed dataset is written through
// the store (so it lands in a sealed segment) and the file is renamed
// aside; a crash mid-migration re-runs it from the original file.
func migrateLegacyTriG(dir string, ts *tdb.Store) error {
	path := filepath.Join(dir, "ontology.trig")
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("mdm: read legacy ontology.trig: %w", err)
	}
	if ts.Dataset().Len() > 0 {
		// The store already has content: a previous migration completed
		// but the rename was interrupted, or the operator restored an old
		// export alongside a live store. Never overwrite the store.
		return fmt.Errorf("mdm: both a tdb store and %s exist; remove or rename one", path)
	}
	parsed, err := turtle.ParseDataset(string(data))
	if err != nil {
		return fmt.Errorf("mdm: parse legacy ontology.trig: %w", err)
	}
	for _, p := range parsed.Prefixes().Pairs() {
		if err := ts.BindPrefix(p[0], p[1]); err != nil {
			return err
		}
	}
	for _, q := range parsed.Quads() {
		if err := ts.AddQuad(q); err != nil {
			return err
		}
	}
	if err := ts.Compact(); err != nil {
		return err
	}
	return os.Rename(path, path+".migrated")
}

// Checkpoint makes a persistent system's current ontology state durable
// by running a full storage compaction (facade writes go through the
// ontology, not the WAL, so the sealed segment is their durability
// point). It is a no-op for in-memory systems.
func (s *System) Checkpoint() error {
	if s.tdbStore == nil {
		return nil
	}
	return s.tdbStore.Compact()
}

// CompactStorage forces a full storage compaction now: the live dataset
// is rewritten into a single segment against a fresh dictionary
// (dropping terms only dead history referenced), the WAL is truncated,
// and readers move to the new storage epoch. In-memory systems no-op.
// This is the operation behind `mdmctl compact`.
func (s *System) CompactStorage() error {
	if s.tdbStore == nil {
		return nil
	}
	return s.tdbStore.Compact()
}

// Storage exposes the underlying tdb store of a persistent system (nil
// for in-memory systems) for storage-level introspection: epoch
// pinning, WAL counters, manual checkpoints.
func (s *System) Storage() *tdb.Store { return s.tdbStore }

// Close checkpoints and releases a persistent system's resources. It is
// a no-op for in-memory systems.
func (s *System) Close() error {
	if s.tdbStore == nil {
		return nil
	}
	if err := s.tdbStore.Compact(); err != nil {
		s.tdbStore.Close()
		return err
	}
	return s.tdbStore.Close()
}

// FromParts assembles a System around an existing ontology and wrapper
// registry (e.g. a prebuilt fixture).
func FromParts(ont *bdi.Ontology, reg *wrapper.Registry) *System {
	meta, _ := store.Open("")
	return &System{
		ont:      ont,
		reg:      reg,
		releases: release.NewManager(ont, reg),
		meta:     meta,
		rewriter: rewrite.New(ont, reg),
		fed:      federate.NewEngine(),
	}
}

// Ontology exposes the underlying BDI ontology for advanced use.
func (s *System) Ontology() *bdi.Ontology { return s.ont }

// Wrappers exposes the wrapper registry.
func (s *System) Wrappers() *wrapper.Registry { return s.reg }

// Metadata exposes the system metadata store.
func (s *System) Metadata() *store.Store { return s.meta }

// Releases exposes the release manager.
func (s *System) Releases() *release.Manager { return s.releases }

// Federation exposes the federated execution engine so deployments can
// tune the scatter fan-out, the per-source fetch timeout, and the
// source-snapshot cache TTL. Configure it before serving queries.
func (s *System) Federation() *federate.Engine { return s.fed }

// --- Prefixes and IRIs ---

// BindPrefix registers a namespace prefix for CURIE expansion.
func (s *System) BindPrefix(prefix, namespace string) {
	s.ont.Dataset().Prefixes().Bind(prefix, namespace)
}

// IRI resolves a CURIE ("ex:Player") or absolute IRI to a Term.
func (s *System) IRI(curieOrIRI string) Term {
	if iri, ok := s.ont.Dataset().Prefixes().Expand(curieOrIRI); ok {
		return rdf.IRI(iri)
	}
	return rdf.IRI(curieOrIRI)
}

// --- Steward API: global graph (paper §2.1) ---

// AddConcept declares a concept (CURIE or IRI) with a label.
func (s *System) AddConcept(concept, label string) error {
	return s.ont.AddConcept(s.IRI(concept), label)
}

// AddFeature declares a feature.
func (s *System) AddFeature(feature, label string) error {
	return s.ont.AddFeature(s.IRI(feature), label)
}

// AttachFeature links a feature to its (single) concept.
func (s *System) AttachFeature(concept, feature string) error {
	return s.ont.AttachFeature(s.IRI(concept), s.IRI(feature))
}

// MarkIdentifier declares a feature as a concept identifier.
func (s *System) MarkIdentifier(feature string) error {
	return s.ont.MarkIdentifier(s.IRI(feature))
}

// RelateConcepts adds a user-defined relation between concepts.
func (s *System) RelateConcepts(from, prop, to string) error {
	return s.ont.RelateConcepts(s.IRI(from), s.IRI(prop), s.IRI(to))
}

// AddSubClass records a taxonomy edge.
func (s *System) AddSubClass(sub, super string) error {
	return s.ont.AddSubClass(s.IRI(sub), s.IRI(super))
}

// --- Steward API: sources, wrappers, releases (paper §2.2) ---

// AddSource declares a data source.
func (s *System) AddSource(sourceID, label string) error {
	_, err := s.meta.Insert("sources", store.Doc{"source": sourceID, "label": label})
	if err != nil {
		return err
	}
	return s.ont.AddDataSource(sourceID, label)
}

// RegisterWrapper releases a wrapper: registry + source graph + release
// log, with schema diffing against the source's previous wrapper. Any
// federation state held under the wrapper's name — cached source
// snapshot, circuit-breaker record, serve-stale fallback — is dropped,
// so a re-registered (renamed back / repointed) wrapper is fetched
// fresh rather than served its predecessor's rows.
func (s *System) RegisterWrapper(w Wrapper) (Release, error) {
	rel, err := s.releases.Register(w)
	if err != nil {
		return Release{}, err
	}
	s.fed.Forget(w.Name())
	_, _ = s.meta.Insert("releases", store.Doc{
		"seq": int64(rel.Seq), "kind": string(rel.Kind), "source": rel.SourceID,
		"wrapper": rel.Wrapper, "breaking": rel.Breaking, "signature": rel.Signature,
	})
	return rel, nil
}

// DefineMapping validates and stores a LAV mapping.
func (s *System) DefineMapping(m Mapping) error { return s.ont.DefineMapping(m) }

// SuggestMapping derives a candidate mapping for a new wrapper version
// from its predecessor's mapping (steward reviews before defining).
func (s *System) SuggestMapping(prevWrapper, newWrapper string) (Mapping, []Change, error) {
	return s.releases.SuggestMapping(prevWrapper, newWrapper)
}

// DetectDrift diffs a wrapper's live payload schema against its declared
// signature.
func (s *System) DetectDrift(ctx context.Context, wrapperName string) ([]Change, error) {
	return s.releases.DetectDrift(ctx, wrapperName)
}

// Validate checks all BDI integrity constraints.
func (s *System) Validate() []Violation { return s.ont.Validate() }

// --- Analyst API: querying (paper §2.4) ---

// Rewrite resolves a walk into a federated plan without executing it.
func (s *System) Rewrite(w *Walk) (*RewriteResult, error) {
	return s.rewriter.Rewrite(w)
}

// Query rewrites and executes a walk federated — source fetches run
// concurrently through the federation engine — returning the
// materialized answer relation and the rewriting artifacts (SPARQL,
// algebra) for inspection. For streamed or paged delivery use
// QueryCursor / QueryPage.
func (s *System) Query(ctx context.Context, w *Walk) (*Relation, *RewriteResult, error) {
	cur, res, err := s.QueryCursor(ctx, w)
	if err != nil {
		return nil, res, err
	}
	defer cur.Close()
	rel, err := cur.Materialize(ctx)
	if err != nil {
		return nil, res, fmt.Errorf("mdm: execute rewritten query: %w", err)
	}
	return rel, res, nil
}

// QueryCursor rewrites a walk and starts streaming federated execution:
// the scatter phase fetches all distinct sources concurrently (through
// the snapshot cache), then rows are produced on demand through
// WalkCursor.Next with no per-operator materialization. It is QueryPage
// without a page bound.
func (s *System) QueryCursor(ctx context.Context, w *Walk) (*WalkCursor, *RewriteResult, error) {
	return s.QueryPage(ctx, w, -1, -1)
}

// QueryPage is QueryCursor with a page bound pushed into the streaming
// pipeline: when limit >= 0 at most limit rows are produced, when
// offset > 0 that many are skipped first — the paging contract of the
// REST walk endpoints. A page read costs O(sources + page), and for
// unchanged source snapshots pages partition the full stream. Pass -1
// to leave either unbounded.
func (s *System) QueryPage(ctx context.Context, w *Walk, limit, offset int) (*WalkCursor, *RewriteResult, error) {
	return s.QueryRun(ctx, w, QueryOpts{Limit: limit, Offset: offset})
}

// QueryRun is QueryPage with full per-query options, including the
// degradation mode: QueryOpts.Partial overrides the engine-wide
// PartialResults default for this query. In partial mode a failed
// source no longer fails the walk — check WalkCursor.Partial/Missing/
// StaleSources for completeness annotations.
func (s *System) QueryRun(ctx context.Context, w *Walk, opts QueryOpts) (*WalkCursor, *RewriteResult, error) {
	tr := obs.FromContext(ctx)
	t0 := time.Now()
	res, err := s.rewriter.Rewrite(w)
	tr.StageDur("rewrite", time.Since(t0))
	if err != nil {
		return nil, nil, err
	}
	tr.SetPlan(planSummary(res))
	cur, err := s.fed.RunWith(ctx, res.Plan, opts)
	if err != nil {
		return nil, res, fmt.Errorf("mdm: execute rewritten query: %w", err)
	}
	return cur, res, nil
}

// planSummary renders a rewrite result as the one-line plan string
// carried by traces and the slow-query log.
func planSummary(res *RewriteResult) string {
	return fmt.Sprintf("union(cqs=%d) cols=%d", len(res.CQs), len(res.OutputColumns))
}

// QuerySPARQL accepts an ontology-mediated query written directly in
// SPARQL (the fragment MDM itself generates for walks), translates it to
// a walk, rewrites it over the LAV mappings and executes it federated.
func (s *System) QuerySPARQL(ctx context.Context, query string) (*Relation, *RewriteResult, error) {
	walk, err := s.WalkFromSPARQL(query)
	if err != nil {
		return nil, nil, err
	}
	return s.Query(ctx, walk)
}

// WalkFromSPARQL translates an ontology-mediated SPARQL query (the
// fragment MDM generates for walks) into a Walk without executing it —
// the entry point for callers that want cursor-based execution of a
// SPARQL-written OMQ via QueryCursor/QueryPage.
func (s *System) WalkFromSPARQL(query string) (*Walk, error) {
	return rewrite.WalkFromSPARQL(s.ont, query)
}

// SPARQL runs a SPARQL query over the ontology dataset itself (global
// graph, source graph and mapping named graphs) — the metadata
// inspection surface of the original tool — and materializes the full
// answer. For paged or cancelable reads use SPARQLContext or
// SPARQLCursor.
func (s *System) SPARQL(query string) (*sparql.Result, error) {
	return sparql.Run(s.ont.Dataset(), query)
}

// SPARQLContext is SPARQL with a cancelable context: evaluation checks
// ctx once per produced row and aborts with ctx's error when it is
// canceled (e.g. a dropped HTTP client).
func (s *System) SPARQLContext(ctx context.Context, query string) (*sparql.Result, error) {
	return sparql.RunContext(ctx, s.ont.Dataset(), query)
}

// SPARQLCursor starts streaming, cursor-based evaluation of a metadata
// SPARQL query: rows are produced on demand through Cursor.Next, LIMIT
// and OFFSET are pushed into evaluation, and abandoning the cursor
// stops the work. It is SPARQLPage without a page override.
func (s *System) SPARQLCursor(query string) (*sparql.Cursor, error) {
	return s.SPARQLPage(query, -1, -1)
}

// SPARQLPage is SPARQLCursor with a page override: limit and offset,
// when >= 0, replace the query's own LIMIT/OFFSET before evaluation —
// the paging contract of the REST query endpoints. Pass -1 to keep the
// query's values.
//
// On a persistent system the cursor pins the current storage epoch: a
// background (or explicit) compaction that swaps the live dataset while
// the cursor drains does not disturb it — it keeps streaming its
// pinned, pre-compaction view, which is released when the cursor is
// closed or exhausted.
func (s *System) SPARQLPage(query string, limit, offset int) (*sparql.Cursor, error) {
	return s.SPARQLPageTrace(query, limit, offset, nil)
}

// SPARQLPageTrace is SPARQLPage with an observability trace attached:
// the parse and plan stage durations are recorded on tr (and in the
// engine's stage-duration histogram), the planner annotates tr with the
// plan summary and plan-cache outcome, and — when tr.Detail is set —
// every operator in the pipeline is wrapped with a per-operator span
// for EXPLAIN output. A nil tr behaves exactly like SPARQLPage.
func (s *System) SPARQLPageTrace(query string, limit, offset int, tr *obs.Trace) (*sparql.Cursor, error) {
	t0 := time.Now()
	q, err := sparql.Parse(query)
	d := time.Since(t0)
	sparql.ObserveStage("parse", d)
	tr.StageDur("parse", d)
	if err != nil {
		return nil, err
	}
	if limit >= 0 {
		q.Limit = limit
	}
	if offset >= 0 {
		q.Offset = offset
	}
	ds := s.ont.Dataset()
	var pin *tdb.Snapshot
	if s.tdbStore != nil {
		pin = s.tdbStore.PinSnapshot()
		ds = pin.Dataset()
	}
	cur, err := sparql.EvalCursorTrace(ds, q, tr)
	if err != nil {
		if pin != nil {
			pin.Release()
		}
		return nil, err
	}
	if pin != nil {
		cur.OnClose(pin.Release)
	}
	return cur, nil
}

// ExplainSPARQL runs a metadata SPARQL query to completion with
// detailed tracing (EXPLAIN ANALYZE semantics: the query really
// executes, operator timings are measured, rows are drained and
// discarded) and returns the execution report: stage durations,
// per-operator spans with rows in/out and join strategies, the plan
// summary and the plan-cache outcome.
func (s *System) ExplainSPARQL(ctx context.Context, query string) (*obs.Report, error) {
	tr := obs.NewTrace()
	tr.Detail = true
	cur, err := s.SPARQLPageTrace(query, -1, -1, tr)
	if err != nil {
		return nil, err
	}
	defer cur.Close()
	t0 := time.Now()
	for cur.Next(ctx) {
	}
	d := time.Since(t0)
	sparql.ObserveStage("execute", d)
	tr.StageDur("execute", d)
	if err := cur.Err(); err != nil {
		return nil, err
	}
	tr.SetAttr("rows", fmt.Sprintf("%d", cur.Rows()))
	return tr.Report(), nil
}

// --- Introspection & rendering (Figures 5-7) ---

// RenderGlobalGraph renders the global graph (Figure 5 style).
func (s *System) RenderGlobalGraph() string { return s.ont.RenderGlobal() }

// RenderSourceGraph renders the source graph (Figure 6 style).
func (s *System) RenderSourceGraph() string { return s.ont.RenderSource() }

// RenderMappings renders all LAV mappings (Figure 7 style).
func (s *System) RenderMappings() string { return s.ont.RenderMappings() }

// Stats summarizes ontology sizes.
func (s *System) Stats() bdi.Stats { return s.ont.Stats() }

// ReleaseLog returns all releases in order.
func (s *System) ReleaseLog() []Release { return s.releases.Log() }

// ExportTriG serializes the full ontology dataset as TriG.
func (s *System) ExportTriG() string {
	return turtle.WriteDataset(s.ont.Dataset())
}

// ImportTriG loads a TriG document produced by ExportTriG into a fresh
// system (wrappers must be re-registered by the caller; they are live
// code, not data).
func ImportTriG(doc string) (*System, error) {
	ds, err := turtle.ParseDataset(doc)
	if err != nil {
		return nil, err
	}
	ont := bdi.FromDataset(ds)
	reg := wrapper.NewRegistry()
	meta, _ := store.Open("")
	return &System{
		ont:      ont,
		reg:      reg,
		releases: release.NewManager(ont, reg),
		meta:     meta,
		rewriter: rewrite.New(ont, reg),
		fed:      federate.NewEngine(),
	}, nil
}
