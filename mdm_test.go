package mdm_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mdm"
	"mdm/internal/federate"
	"mdm/internal/relalg"
	"mdm/internal/schema"
	"mdm/internal/usecase"
	"mdm/internal/wrapper"
)

// buildSystem assembles the football use case through the PUBLIC facade
// only, exercising the same steps a downstream user would write.
func buildSystem(t *testing.T) *mdm.System {
	t.Helper()
	sys := mdm.New()
	sys.BindPrefix("ex", "http://ex.org/")
	sys.BindPrefix("sc", "http://schema.org/")

	check := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	check(sys.AddConcept("ex:Player", "Player"))
	check(sys.AddConcept("sc:SportsTeam", "SportsTeam"))
	for f, c := range map[string]string{
		"ex:playerId": "ex:Player", "ex:playerName": "ex:Player",
		"ex:teamId": "sc:SportsTeam", "ex:teamName": "sc:SportsTeam",
	} {
		check(sys.AddFeature(f, ""))
		check(sys.AttachFeature(c, f))
	}
	check(sys.MarkIdentifier("ex:playerId"))
	check(sys.MarkIdentifier("ex:teamId"))
	check(sys.RelateConcepts("ex:Player", "ex:playsIn", "sc:SportsTeam"))
	check(sys.AddSource("players-api", "Players API"))
	check(sys.AddSource("teams-api", "Teams API"))

	w1 := wrapper.NewMem("w1", "players-api", []schema.Doc{
		{"id": relalg.Int(1), "pName": relalg.String("Alice"), "teamId": relalg.Int(10)},
		{"id": relalg.Int(2), "pName": relalg.String("Bob"), "teamId": relalg.Int(11)},
	}, nil)
	w2 := wrapper.NewMem("w2", "teams-api", []schema.Doc{
		{"id": relalg.Int(10), "name": relalg.String("Reds")},
		{"id": relalg.Int(11), "name": relalg.String("Blues")},
	}, nil)
	if _, err := sys.RegisterWrapper(w1); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RegisterWrapper(w2); err != nil {
		t.Fatal(err)
	}
	check(sys.DefineMapping(mdm.Mapping{
		Wrapper: "w1",
		Subgraph: []mdm.Triple{
			mdm.T(sys.IRI("ex:Player"), sys.IRI("rdf:type"), sys.IRI("G:Concept")),
			mdm.T(sys.IRI("ex:Player"), sys.IRI("G:hasFeature"), sys.IRI("ex:playerId")),
			mdm.T(sys.IRI("ex:Player"), sys.IRI("G:hasFeature"), sys.IRI("ex:playerName")),
			mdm.T(sys.IRI("ex:Player"), sys.IRI("ex:playsIn"), sys.IRI("sc:SportsTeam")),
			mdm.T(sys.IRI("sc:SportsTeam"), sys.IRI("rdf:type"), sys.IRI("G:Concept")),
			mdm.T(sys.IRI("sc:SportsTeam"), sys.IRI("G:hasFeature"), sys.IRI("ex:teamId")),
		},
		SameAs: map[string]mdm.Term{
			"id": sys.IRI("ex:playerId"), "pName": sys.IRI("ex:playerName"),
			"teamId": sys.IRI("ex:teamId"),
		},
	}))
	check(sys.DefineMapping(mdm.Mapping{
		Wrapper: "w2",
		Subgraph: []mdm.Triple{
			mdm.T(sys.IRI("sc:SportsTeam"), sys.IRI("rdf:type"), sys.IRI("G:Concept")),
			mdm.T(sys.IRI("sc:SportsTeam"), sys.IRI("G:hasFeature"), sys.IRI("ex:teamId")),
			mdm.T(sys.IRI("sc:SportsTeam"), sys.IRI("G:hasFeature"), sys.IRI("ex:teamName")),
		},
		SameAs: map[string]mdm.Term{"id": sys.IRI("ex:teamId"), "name": sys.IRI("ex:teamName")},
	}))
	return sys
}

func TestFacadeEndToEnd(t *testing.T) {
	sys := buildSystem(t)
	if v := sys.Validate(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
	walk := mdm.NewWalk().
		SelectAs(sys.IRI("sc:SportsTeam"), sys.IRI("ex:teamName"), "team").
		SelectAs(sys.IRI("ex:Player"), sys.IRI("ex:playerName"), "player").
		Relate(sys.IRI("ex:Player"), sys.IRI("ex:playsIn"), sys.IRI("sc:SportsTeam"))
	rel, res, err := sys.Query(context.Background(), walk)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 || len(res.CQs) != 1 {
		t.Fatalf("rows=%d cqs=%d", rel.Len(), len(res.CQs))
	}
	if res.OutputColumns[0] != "team" || res.OutputColumns[1] != "player" {
		t.Errorf("columns = %v", res.OutputColumns)
	}
}

func TestFacadeIRIExpansion(t *testing.T) {
	sys := mdm.New()
	sys.BindPrefix("ex", "http://ex.org/")
	if got := sys.IRI("ex:Player").Value; got != "http://ex.org/Player" {
		t.Errorf("CURIE expansion = %q", got)
	}
	if got := sys.IRI("http://direct.org/x").Value; got != "http://direct.org/x" {
		t.Errorf("absolute IRI mangled: %q", got)
	}
}

func TestFacadeSPARQLOverMetadata(t *testing.T) {
	sys := buildSystem(t)
	res, err := sys.SPARQL(`
PREFIX G: <http://www.essi.upc.edu/~snadal/BDIOntology/Global/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?c WHERE {
  GRAPH <http://www.essi.upc.edu/~snadal/BDIOntology/Global/graph> {
    ?c rdf:type G:Concept .
  }
} ORDER BY ?c`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("concepts via SPARQL = %d", res.Len())
	}
}

func TestFacadeSPARQLCursorAndPaging(t *testing.T) {
	sys := buildSystem(t)
	const q = `
PREFIX G: <http://www.essi.upc.edu/~snadal/BDIOntology/Global/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?c WHERE {
  GRAPH <http://www.essi.upc.edu/~snadal/BDIOntology/Global/graph> {
    ?c rdf:type G:Concept .
  }
}`
	ctx := context.Background()

	cur, err := sys.SPARQLCursor(q)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	var got []string
	for b := range cur.Solutions(ctx) {
		got = append(got, b["c"].Value)
	}
	if cur.Err() != nil {
		t.Fatal(cur.Err())
	}
	if len(got) != 2 {
		t.Fatalf("cursor solutions = %v", got)
	}

	// SPARQLPage overrides the query's paging: page 2 of size 1 is the
	// second row of the canonical order.
	page, err := sys.SPARQLPage(q, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer page.Close()
	if !page.Next(ctx) {
		t.Fatalf("page empty: %v", page.Err())
	}
	if c, ok := page.Row().Term(0); !ok || c.Value != got[1] {
		t.Fatalf("page row = %v, want %q", c, got[1])
	}
	if page.Next(ctx) {
		t.Fatal("page has more than limit rows")
	}

	// SPARQLContext with a canceled context surfaces the ctx error.
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := sys.SPARQLContext(canceled, q); err == nil {
		t.Fatal("canceled SPARQLContext succeeded")
	}
}

func TestFacadeExportImportTriG(t *testing.T) {
	sys := buildSystem(t)
	doc := sys.ExportTriG()
	if !strings.Contains(doc, "@prefix") {
		t.Fatalf("export = %.100s", doc)
	}
	sys2, err := mdm.ImportTriG(doc)
	if err != nil {
		t.Fatal(err)
	}
	st1, st2 := sys.Stats(), sys2.Stats()
	if st1.Concepts != st2.Concepts || st1.Mappings != st2.Mappings || st1.SameAs != st2.SameAs {
		t.Errorf("stats differ: %+v vs %+v", st1, st2)
	}
	// The re-imported system validates (wrapper registry empty is fine:
	// mappings reference source-graph wrappers, which ARE in the data).
	if v := sys2.Validate(); len(v) != 0 {
		t.Errorf("violations after reimport: %v", v)
	}
	if _, err := mdm.ImportTriG("not trig <"); err == nil {
		t.Error("bad TriG accepted")
	}
}

func TestFacadeReleaseAndDrift(t *testing.T) {
	sys := buildSystem(t)
	w, _ := sys.Wrappers().Get("w1")
	mem := w.(*wrapper.Mem)
	changes, err := sys.DetectDrift(context.Background(), "w1")
	if err != nil || len(changes) != 0 {
		t.Fatalf("drift = %v, %v", changes, err)
	}
	mem.SetDocs([]schema.Doc{{"id": relalg.Int(1), "fullName": relalg.String("X"), "teamId": relalg.Int(10)}})
	changes, err = sys.DetectDrift(context.Background(), "w1")
	if err != nil || len(changes) == 0 {
		t.Fatalf("drift after change = %v, %v", changes, err)
	}
	// Release a v2 wrapper and suggest its mapping.
	w1v2 := wrapper.NewMem("w1v2", "players-api", []schema.Doc{
		{"id": relalg.Int(1), "fullName": relalg.String("X"), "teamId": relalg.Int(10)},
	}, nil)
	rel, err := sys.RegisterWrapper(w1v2)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Kind != "new-version" || !rel.Breaking {
		t.Fatalf("release = %+v", rel)
	}
	suggested, ch, err := sys.SuggestMapping("w1", "w1v2")
	if err != nil || len(ch) == 0 {
		t.Fatalf("suggest = %v, %v", ch, err)
	}
	if err := sys.DefineMapping(suggested); err != nil {
		t.Fatal(err)
	}
	// Log in metadata store.
	if sys.Metadata().Count("releases") != 3 {
		t.Errorf("releases in store = %d", sys.Metadata().Count("releases"))
	}
	if got := len(sys.ReleaseLog()); got != 3 {
		t.Errorf("release log = %d", got)
	}
}

func TestFacadeRenderings(t *testing.T) {
	sys := buildSystem(t)
	if !strings.Contains(sys.RenderGlobalGraph(), "concept ex:Player") {
		t.Error("global render")
	}
	if !strings.Contains(sys.RenderSourceGraph(), "wrapper w1") {
		t.Error("source render")
	}
	if !strings.Contains(sys.RenderMappings(), "owl:sameAs") {
		t.Error("mappings render")
	}
	st := sys.Stats()
	if st.Concepts != 2 || st.Wrappers != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFacadeFromPartsWithFixture(t *testing.T) {
	f := usecase.MustNew()
	sys := mdm.FromParts(f.Ont, f.Reg)
	rel, _, err := sys.Query(context.Background(), usecase.Fig8Walk())
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 5 {
		t.Fatalf("rows = %d", rel.Len())
	}
}

func TestPersistentOpenCheckpointReopen(t *testing.T) {
	dir := t.TempDir()
	sys, err := mdm.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sys.BindPrefix("ex", "http://ex.org/")
	if err := sys.AddConcept("ex:Player", "Player"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddFeature("ex:playerId", ""); err != nil {
		t.Fatal(err)
	}
	if err := sys.AttachFeature("ex:Player", "ex:playerId"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddSource("players-api", "Players API"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	sys2, err := mdm.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	st := sys2.Stats()
	if st.Concepts != 1 || st.Features != 1 || st.Sources != 1 {
		t.Fatalf("reopened stats = %+v", st)
	}
	// Metadata store persisted too.
	if sys2.Metadata().Count("sources") != 1 {
		t.Errorf("metadata sources = %d", sys2.Metadata().Count("sources"))
	}
	// In-memory systems: Checkpoint/Close are no-ops.
	mem := mdm.New()
	if err := mem.Checkpoint(); err != nil {
		t.Error(err)
	}
	if err := mem.Close(); err != nil {
		t.Error(err)
	}
}

// failingWrapper fails at Fetch time; used for failure-injection tests.
type failingWrapper struct{ mdm.Wrapper }

func (failingWrapper) Fetch(context.Context) (*mdm.Relation, error) {
	return nil, fmt.Errorf("players-api: connection refused")
}

func TestQueryErrorNamesFailingWrapper(t *testing.T) {
	f := usecase.MustNew()
	// Replace w2 with a failing variant in a fresh registry.
	reg := wrapper.NewRegistry()
	for _, name := range []string{"w1", "w3", "w4", "w5", "w6"} {
		w, _ := f.Reg.Get(name)
		if err := reg.Register(w); err != nil {
			t.Fatal(err)
		}
	}
	w2, _ := f.Reg.Get("w2")
	if err := reg.Register(failingWrapper{w2}); err != nil {
		t.Fatal(err)
	}
	sys := mdm.FromParts(f.Ont, reg)
	_, _, err := sys.Query(context.Background(), usecase.Fig8Walk())
	if err == nil {
		t.Fatal("query over failing wrapper succeeded")
	}
	if !strings.Contains(err.Error(), "w2") || !strings.Contains(err.Error(), "connection refused") {
		t.Errorf("error should name the wrapper and cause: %v", err)
	}
}

func TestQuerySPARQLFacade(t *testing.T) {
	f := usecase.MustNew()
	sys := mdm.FromParts(f.Ont, f.Reg)
	rel, res, err := sys.QuerySPARQL(context.Background(), `
PREFIX ex: <http://www.example.org/football/>
PREFIX sc: <http://schema.org/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?playerName WHERE {
  ?p rdf:type ex:Player .
  ?p ex:playerName ?playerName .
}`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 5 || len(res.CQs) != 1 {
		t.Fatalf("rows=%d cqs=%d", rel.Len(), len(res.CQs))
	}
	if _, _, err := sys.QuerySPARQL(context.Background(), "garbage"); err == nil {
		t.Error("bad SPARQL accepted")
	}
}

// TestReRegisterWrapperInvalidatesCacheAndBreaker: swapping a wrapper
// under the same name must not leave the federation serving the old
// wrapper's cached snapshot or failing fast on its tripped breaker.
func TestReRegisterWrapperInvalidatesCacheAndBreaker(t *testing.T) {
	sys := buildSystem(t)
	fed := sys.Federation()
	fed.Cache = federate.NewCache(time.Hour) // snapshots outlive the swap
	fed.Breakers = federate.NewBreakerSet(1, time.Hour)

	walk := mdm.NewWalk().SelectAs(sys.IRI("ex:Player"), sys.IRI("ex:playerName"), "player")
	query := func() string {
		t.Helper()
		rel, _, err := sys.Query(context.Background(), walk)
		if err != nil {
			t.Fatal(err)
		}
		return rel.Table()
	}
	if got := query(); !strings.Contains(got, "Alice") {
		t.Fatalf("seed rows missing Alice:\n%s", got)
	}
	// Simulate the old wrapper having tripped its breaker before the swap.
	fed.Breakers.For("w1").RecordFailure()

	if !sys.Wrappers().Remove("w1") {
		t.Fatal("w1 not removed")
	}
	w1b := wrapper.NewMem("w1", "players-api", []schema.Doc{
		{"id": relalg.Int(3), "pName": relalg.String("Carol"), "teamId": relalg.Int(10)},
	}, nil)
	if _, err := sys.RegisterWrapper(w1b); err != nil {
		t.Fatal(err)
	}

	// Without RegisterWrapper's Forget hook the hour-long cache entry
	// would still answer with Alice — or the open breaker would fail the
	// query outright.
	got := query()
	if strings.Contains(got, "Alice") || !strings.Contains(got, "Carol") {
		t.Fatalf("rows after re-registration:\n%s\nwant Carol only", got)
	}
	if st := fed.Breakers.States()["w1"]; st != "closed" {
		t.Fatalf("w1 breaker after re-registration = %q, want closed", st)
	}
}

func TestLegacyTriGMigration(t *testing.T) {
	dir := t.TempDir()
	// A pre-segment mdmd data directory: one TriG export, no store.
	legacy := mdm.New()
	legacy.BindPrefix("ex", "http://ex.org/")
	if err := legacy.AddConcept("ex:Player", "Player"); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ontology.trig"), []byte(legacy.ExportTriG()), 0o644); err != nil {
		t.Fatal(err)
	}

	sys, err := mdm.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Stats().Concepts != 1 {
		t.Fatalf("migrated stats = %+v", sys.Stats())
	}
	if _, err := os.Stat(filepath.Join(dir, "ontology.trig.migrated")); err != nil {
		t.Fatalf("legacy file not renamed aside: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "ontology.trig")); !os.IsNotExist(err) {
		t.Fatalf("legacy file still present: %v", err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: content survives in the segment store; the renamed export
	// is not re-imported.
	sys2, err := mdm.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	if sys2.Stats().Concepts != 1 {
		t.Fatalf("reopened stats = %+v", sys2.Stats())
	}

	// A data dir holding BOTH a live store and a legacy export refuses
	// to guess which one wins.
	if err := os.WriteFile(filepath.Join(dir, "ontology.trig"), []byte(legacy.ExportTriG()), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := mdm.Open(dir); err == nil {
		t.Fatal("Open should refuse a dir with both store and legacy export")
	}
}

func TestSPARQLPagePinsSnapshotAcrossCompaction(t *testing.T) {
	dir := t.TempDir()
	sys, err := mdm.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.BindPrefix("ex", "http://ex.org/")
	for i := 0; i < 10; i++ {
		if err := sys.AddConcept(fmt.Sprintf("ex:C%d", i), ""); err != nil {
			t.Fatal(err)
		}
	}
	cur, err := sys.SPARQLPage(
		`PREFIX G: <http://www.essi.upc.edu/~snadal/BDIOntology/Global/> SELECT ?c WHERE { GRAPH ?g { ?c a G:Concept } }`, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	// Compact while the cursor is open: it must keep draining its
	// pinned pre-compaction epoch, which stays retired until released.
	if err := sys.CompactStorage(); err != nil {
		t.Fatal(err)
	}
	if got := sys.Storage().RetiredEpochs(); got != 1 {
		t.Fatalf("RetiredEpochs while cursor open = %d, want 1", got)
	}
	rows := 0
	for cur.Next(context.Background()) {
		rows++
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	if rows != 10 {
		t.Fatalf("cursor rows = %d, want 10", rows)
	}
	// Drain released the pin; the retired epoch is gone.
	if got := sys.Storage().RetiredEpochs(); got != 0 {
		t.Fatalf("RetiredEpochs after drain = %d, want 0", got)
	}
	// Fresh queries see the compacted (identical) data.
	res, err := sys.SPARQL(`PREFIX G: <http://www.essi.upc.edu/~snadal/BDIOntology/Global/> SELECT ?c WHERE { GRAPH ?g { ?c a G:Concept } }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 10 {
		t.Fatalf("post-compaction rows = %d", res.Len())
	}
}

// TestSPARQLPathReleaseLineage exercises the property-path surface
// through the public facade: ontology versions form a subClassOf chain
// (each release specializes its predecessor), and governance queries
// walk the lineage transitively with paging.
func TestSPARQLPathReleaseLineage(t *testing.T) {
	sys := mdm.New()
	defer sys.Close()
	sys.BindPrefix("ex", "http://ex.org/")
	for i := 1; i <= 5; i++ {
		if err := sys.AddConcept(fmt.Sprintf("ex:SalesV%d", i), fmt.Sprintf("Sales release %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 2; i <= 5; i++ {
		if err := sys.AddSubClass(fmt.Sprintf("ex:SalesV%d", i), fmt.Sprintf("ex:SalesV%d", i-1)); err != nil {
			t.Fatal(err)
		}
	}

	const prefix = `PREFIX ex: <http://ex.org/> PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#> `

	// Full ancestry of the newest release, transitively.
	res, err := sys.SPARQL(prefix + `SELECT ?anc WHERE { GRAPH ?g { ex:SalesV5 rdfs:subClassOf+ ?anc } }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 {
		t.Fatalf("ancestors = %d, want 4\n%s", res.Len(), res.Table())
	}

	// Every version governed by the V1 contract, including V1 itself
	// (zero-length match of *).
	res, err = sys.SPARQL(prefix + `SELECT ?v WHERE { GRAPH ?g { ?v rdfs:subClassOf* ex:SalesV1 } }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 5 {
		t.Fatalf("governed versions = %d, want 5\n%s", res.Len(), res.Table())
	}

	// The same lineage question through the paging facade: two pages of
	// two plus a final page of one, in a stable canonical order.
	var paged []string
	for off := 0; off < 5; off += 2 {
		cur, err := sys.SPARQLPage(prefix+`SELECT ?v WHERE { GRAPH ?g { ?v rdfs:subClassOf* ex:SalesV1 } }`, 2, off)
		if err != nil {
			t.Fatal(err)
		}
		for cur.Next(context.Background()) {
			if v, ok := cur.Row().Term(0); ok {
				paged = append(paged, v.Value)
			}
		}
		if err := cur.Err(); err != nil {
			t.Fatal(err)
		}
		cur.Close()
	}
	if len(paged) != 5 {
		t.Fatalf("paged rows = %d, want 5: %v", len(paged), paged)
	}
	for i, v := range paged {
		if want := fmt.Sprintf("http://ex.org/SalesV%d", i+1); v != want {
			t.Fatalf("paged row %d = %s, want %s", i, v, want)
		}
	}

	// Aggregation over the closure: lineage depth per release.
	res, err = sys.SPARQL(prefix + `SELECT ?v (COUNT(?anc) AS ?depth) WHERE { GRAPH ?g { ?v rdfs:subClassOf+ ?anc } } GROUP BY ?v ORDER BY DESC(?depth) LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("rows = %d, want 1\n%s", res.Len(), res.Table())
	}
	v, _ := res.Term(0, "v")
	d, _ := res.Term(0, "depth")
	if v.Value != "http://ex.org/SalesV5" || d.Value != "4" {
		t.Fatalf("deepest lineage = %s depth %s, want SalesV5 depth 4", v.Value, d.Value)
	}
}

// TestSPARQLPathCursorPinsSnapshotAcrossCompaction is the path-operator
// variant of the epoch-pinning contract: a cursor mid-fixpoint-drain
// holds its pre-compaction snapshot via OnClose until fully drained.
func TestSPARQLPathCursorPinsSnapshotAcrossCompaction(t *testing.T) {
	dir := t.TempDir()
	sys, err := mdm.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.BindPrefix("ex", "http://ex.org/")
	for i := 1; i <= 8; i++ {
		if err := sys.AddConcept(fmt.Sprintf("ex:V%d", i), ""); err != nil {
			t.Fatal(err)
		}
		if i > 1 {
			if err := sys.AddSubClass(fmt.Sprintf("ex:V%d", i), fmt.Sprintf("ex:V%d", i-1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	cur, err := sys.SPARQLPage(`PREFIX ex: <http://ex.org/> PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
SELECT ?anc WHERE { GRAPH ?g { ex:V8 rdfs:subClassOf+ ?anc } }`, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.CompactStorage(); err != nil {
		t.Fatal(err)
	}
	if got := sys.Storage().RetiredEpochs(); got != 1 {
		t.Fatalf("RetiredEpochs while path cursor open = %d, want 1", got)
	}
	rows := 0
	for cur.Next(context.Background()) {
		rows++
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	if rows != 7 {
		t.Fatalf("closure rows = %d, want 7", rows)
	}
	if got := sys.Storage().RetiredEpochs(); got != 0 {
		t.Fatalf("RetiredEpochs after drain = %d, want 0", got)
	}
	res, err := sys.SPARQL(`PREFIX ex: <http://ex.org/> PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
SELECT ?anc WHERE { GRAPH ?g { ex:V8 rdfs:subClassOf+ ?anc } }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 7 {
		t.Fatalf("post-compaction closure rows = %d, want 7", res.Len())
	}
}
