// Command linkcheck verifies intra-repository links in Markdown files.
//
// Usage:
//
//	go run ./tools/linkcheck README.md docs
//
// Each argument is a Markdown file or a directory scanned (recursively)
// for *.md files. Inline links and images whose target is a relative
// path are resolved against the containing file's directory and must
// exist on disk; a #fragment suffix is stripped first. External
// schemes (http, https, mailto) and pure-fragment links are skipped —
// this tool gates intra-repo rot, not the internet. Exits non-zero
// listing every dead link, so CI can fail the build on one.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline Markdown links and images: [text](target) and
// ![alt](target). Reference-style links are rare in this repo and are
// deliberately out of scope.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: linkcheck <file-or-dir>...")
		os.Exit(2)
	}
	var files []string
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			os.Exit(2)
		}
		if !info.IsDir() {
			files = append(files, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(d.Name(), ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			os.Exit(2)
		}
	}

	dead := 0
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			os.Exit(2)
		}
		for _, line := range strings.Split(string(data), "\n") {
			for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if skip(target) {
					continue
				}
				if i := strings.IndexByte(target, '#'); i >= 0 {
					target = target[:i]
				}
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(file), filepath.FromSlash(target))
				if _, err := os.Stat(resolved); err != nil {
					fmt.Printf("%s: dead link %q (resolved %s)\n", file, m[1], resolved)
					dead++
				}
			}
		}
	}
	if dead > 0 {
		fmt.Printf("linkcheck: %d dead link(s) in %d file(s)\n", dead, len(files))
		os.Exit(1)
	}
	fmt.Printf("linkcheck: %d file(s) clean\n", len(files))
}

// skip reports whether a link target is outside this tool's scope:
// external schemes, mail, anchors within the same document.
func skip(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#")
}
