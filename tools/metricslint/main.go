// Command metricslint enforces the repo's Prometheus metric
// conventions at build time. It imports every instrumented package so
// all metric registrations run — a duplicate name panics in
// obs.(*Registry).register right here instead of at mdmd startup — and
// then lints the populated default registry: mdm_ prefix, lowercase
// names, counters ending in _total (and only counters), histograms
// carrying a base-unit suffix, reserved labels (le, quantile) unused,
// help text present. CI runs it in the docs job; a nonzero exit fails
// the build.
//
// Usage:
//
//	go run ./tools/metricslint
package main

import (
	"fmt"
	"os"

	"mdm/internal/obs"

	// Imported for their metric registrations only: rest pulls in the
	// sparql, federate and tdb instrumentation transitively, but each
	// is named so a future layering change cannot silently drop one
	// from the lint.
	_ "mdm/internal/federate"
	_ "mdm/internal/rest"
	_ "mdm/internal/sparql"
	_ "mdm/internal/tdb"
)

func main() {
	violations := obs.Default.Lint()
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "metricslint:", v)
	}
	if n := len(violations); n > 0 {
		fmt.Fprintf(os.Stderr, "metricslint: %d violation(s)\n", n)
		os.Exit(1)
	}
	fmt.Println("metricslint: ok")
}
